"""Analytic traffic bounds of Section 5.2, as checkable predicates.

The paper proves (counting shuffled *records*, each of size ``O(d)``):

* Proposition 5.2 — skewed-group traffic is ``O(d n)`` records overall;
* Theorem 5.3 — a worst-case relation forces ``Theta(2^d n)``;
* Proposition 5.5 — skewness-monotonic relations stay within ``O(d^2 n)``;
* Proposition 5.6 — independently-distributed attributes with the stated
  skew-probability bound stay within ``O(d^3 n)``.

:func:`planned_traffic` measures SP-Cube's *planned* record emissions for
a relation under a given sketch — no engine run needed — so the theory
bench can compare measured counts directly against the bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import plan_tuple
from ..core.sketch import SPSketch
from ..relation.relation import Relation


@dataclass(frozen=True)
class TrafficPlan:
    """Planned round-2 emissions for a relation under a sketch."""

    #: Tuples emitted to range-partitioned reducers (one per emission).
    emitted_tuples: int
    #: Map-side partial-aggregation hits (skewed lattice nodes, summed
    #: over tuples) — these do NOT cross the network individually.
    skew_absorptions: int
    #: Number of rows examined.
    rows: int
    num_dimensions: int

    @property
    def emissions_per_tuple(self) -> float:
        return self.emitted_tuples / self.rows if self.rows else 0.0


def planned_traffic(relation: Relation, sketch: SPSketch) -> TrafficPlan:
    """Count SP-Cube's planned per-tuple emissions under ``sketch``."""
    emitted = 0
    absorbed = 0
    for row in relation:
        plan = plan_tuple(row, sketch)
        emitted += plan.num_emitted
        absorbed += len(plan.skewed_masks)
    return TrafficPlan(
        emitted_tuples=emitted,
        skew_absorptions=absorbed,
        rows=len(relation),
        num_dimensions=relation.schema.num_dimensions,
    )


def skewed_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.2 bound on skew-handling traffic: ``O(d n)`` records."""
    return num_dimensions * num_rows


def monotonic_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.5 bound: ``O(d^2 n)`` total records for monotonic relations.

    The proof shows at most ``O(d)`` emissions per tuple (each of size
    ``O(d)``); we bound the *record* count by ``d * n`` and leave the
    ``O(d)`` record width to the byte-level metrics.
    """
    return num_dimensions * num_rows


def independent_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.6 bound: expected ``O(d^2)`` emissions per tuple."""
    return num_dimensions * num_dimensions * num_rows


def worst_case_traffic(num_dimensions: int, num_rows: int) -> int:
    """Thm 5.3: the adversarial relation forces ``Theta(2^d n)`` records."""
    return (1 << num_dimensions) * num_rows


def prop56_skew_probability_bound(num_dimensions: int, level: int) -> float:
    """Prop 5.6's hypothesis: ``P(t in skewed group of an l-cuboid)`` must
    not exceed ``d^(1/(l+1)) / d``."""
    if level < 1:
        raise ValueError("cuboid level must be >= 1")
    return num_dimensions ** (1.0 / (level + 1)) / num_dimensions
