"""Analytic bounds of Sections 4.2 and 5.2, as checkable predicates.

The paper proves (counting shuffled *records*, each of size ``O(d)``):

* Proposition 5.2 — skewed-group traffic is ``O(d n)`` records overall;
* Theorem 5.3 — a worst-case relation forces ``Theta(2^d n)``;
* Proposition 5.5 — skewness-monotonic relations stay within ``O(d^2 n)``;
* Proposition 5.6 — independently-distributed attributes with the stated
  skew-probability bound stay within ``O(d^3 n)``.

It also proves (Propositions 4.5-4.7) that the *sampled* sketch of
Algorithm 2 classifies skew correctly with high probability: a group's
sample count is Binomial, and Chernoff tails bound the probability that
a truly skewed group (``|set(g)| > m``) stays under ``beta = ln(nk)`` in
the sample (a *false negative*) or a small group crosses it (a *false
positive*).  :func:`false_negative_probability` and
:func:`false_positive_probability` expose those per-group tails, and the
``expected_false_*`` helpers sum them over a cuboid's true group sizes —
what the sketch audit (:mod:`repro.observability.diagnostics`) verifies
observed misclassification counts against.

:func:`planned_traffic` measures SP-Cube's *planned* record emissions for
a relation under a given sketch — no engine run needed — so the theory
bench can compare measured counts directly against the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..core.planner import plan_tuple
from ..core.sampling import sampling_probability, skew_sample_threshold
from ..core.sketch import SPSketch
from ..relation.relation import Relation


@dataclass(frozen=True)
class TrafficPlan:
    """Planned round-2 emissions for a relation under a sketch."""

    #: Tuples emitted to range-partitioned reducers (one per emission).
    emitted_tuples: int
    #: Map-side partial-aggregation hits (skewed lattice nodes, summed
    #: over tuples) — these do NOT cross the network individually.
    skew_absorptions: int
    #: Number of rows examined.
    rows: int
    num_dimensions: int

    @property
    def emissions_per_tuple(self) -> float:
        return self.emitted_tuples / self.rows if self.rows else 0.0


def planned_traffic(relation: Relation, sketch: SPSketch) -> TrafficPlan:
    """Count SP-Cube's planned per-tuple emissions under ``sketch``."""
    emitted = 0
    absorbed = 0
    for row in relation:
        plan = plan_tuple(row, sketch)
        emitted += plan.num_emitted
        absorbed += len(plan.skewed_masks)
    return TrafficPlan(
        emitted_tuples=emitted,
        skew_absorptions=absorbed,
        rows=len(relation),
        num_dimensions=relation.schema.num_dimensions,
    )


def skewed_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.2 bound on skew-handling traffic: ``O(d n)`` records."""
    return num_dimensions * num_rows


def monotonic_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.5 bound: ``O(d^2 n)`` total records for monotonic relations.

    The proof shows at most ``O(d)`` emissions per tuple (each of size
    ``O(d)``); we bound the *record* count by ``d * n`` and leave the
    ``O(d)`` record width to the byte-level metrics.
    """
    return num_dimensions * num_rows


def independent_traffic_bound(num_dimensions: int, num_rows: int) -> int:
    """Prop 5.6 bound: expected ``O(d^2)`` emissions per tuple."""
    return num_dimensions * num_dimensions * num_rows


def worst_case_traffic(num_dimensions: int, num_rows: int) -> int:
    """Thm 5.3: the adversarial relation forces ``Theta(2^d n)`` records."""
    return (1 << num_dimensions) * num_rows


def prop56_skew_probability_bound(num_dimensions: int, level: int) -> float:
    """Prop 5.6's hypothesis: ``P(t in skewed group of an l-cuboid)`` must
    not exceed ``d^(1/(l+1)) / d``."""
    if level < 1:
        raise ValueError("cuboid level must be >= 1")
    return num_dimensions ** (1.0 / (level + 1)) / num_dimensions


# -- sketch-accuracy probability bounds (Section 4.2) ------------------------


def false_negative_probability(
    true_size: int, num_rows: int, num_machines: int, memory_records: int
) -> float:
    """Chernoff bound on missing a truly skewed group in the sample.

    A group of true size ``s > m`` has sample count ``X ~ Bin(s, alpha)``
    with mean ``mu = s * alpha > alpha * m = beta``; it is *missed* (a
    false negative) when ``X <= beta``.  The lower Chernoff tail gives
    ``P(X <= (1 - delta) mu) <= exp(-delta^2 mu / 2)`` with
    ``delta = 1 - beta/mu``.  The bound decays fast in ``s``: groups far
    above the memory threshold are essentially never missed, which is the
    content of Proposition 4.5.

    Returns 1.0 (the trivial bound) when ``mu <= beta`` — i.e. for groups
    at or below the skew threshold, where the sketch is *allowed* to go
    either way.
    """
    if true_size < 0:
        raise ValueError("true_size must be non-negative")
    if true_size == 0:
        return 1.0
    alpha = sampling_probability(num_rows, num_machines, memory_records)
    beta = skew_sample_threshold(num_rows, num_machines)
    mu = true_size * alpha
    if mu <= beta:
        return 1.0
    delta = 1.0 - beta / mu
    return math.exp(-delta * delta * mu / 2.0)


def false_positive_probability(
    true_size: int, num_rows: int, num_machines: int, memory_records: int
) -> float:
    """Chernoff bound on flagging a non-skewed group as skewed.

    A group of true size ``s <= m`` has mean sample count
    ``mu = s * alpha <= beta``; it is wrongly flagged (a false positive)
    when ``X > beta``.  The upper Chernoff tail gives
    ``P(X >= (1 + delta) mu) <= exp(-delta^2 mu / (2 + delta))`` with
    ``delta = beta/mu - 1``.  Returns 1.0 when ``mu >= beta`` (groups at
    the threshold — no non-trivial bound) and 0.0 for empty groups.
    """
    if true_size < 0:
        raise ValueError("true_size must be non-negative")
    if true_size == 0:
        return 0.0
    alpha = sampling_probability(num_rows, num_machines, memory_records)
    beta = skew_sample_threshold(num_rows, num_machines)
    mu = true_size * alpha
    if mu >= beta:
        return 1.0
    delta = beta / mu - 1.0
    return math.exp(-delta * delta * mu / (2.0 + delta))


def expected_false_negatives(
    skewed_sizes: Iterable[int],
    num_rows: int,
    num_machines: int,
    memory_records: int,
) -> float:
    """Upper bound on the expected number of missed skewed groups.

    Sums the per-group Chernoff tails over the *truly skewed* group sizes
    (linearity of expectation; each term capped at 1).  The sketch audit
    compares the observed false-negative count of a sampled sketch against
    this bound.
    """
    return sum(
        min(
            1.0,
            false_negative_probability(
                size, num_rows, num_machines, memory_records
            ),
        )
        for size in skewed_sizes
    )


def expected_false_positives(
    non_skewed_sizes: Iterable[int],
    num_rows: int,
    num_machines: int,
    memory_records: int,
) -> float:
    """Upper bound on the expected number of wrongly flagged groups.

    Sums the per-group upper tails over the *truly non-skewed* group
    sizes.  Groups of a handful of tuples contribute essentially zero, so
    the sum is dominated by near-threshold groups, matching the paper's
    observation that sampling errors concentrate at the ``m`` boundary.
    """
    return sum(
        min(
            1.0,
            false_positive_probability(
                size, num_rows, num_machines, memory_records
            ),
        )
        for size in non_skewed_sizes
    )
