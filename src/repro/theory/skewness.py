"""Skewness structure of relations (Definitions 2.7 and 5.4).

A c-group ``g`` is *skewed* when ``|set(g)| > m``.  Skewness is always
monotone downward in the tuple lattice — dropping attributes only grows the
tuple set — but the converse can fail: all of ``g``'s sub-groups may be
skewed while ``g`` itself is not.  Relations where that never happens are
**skewness-monotonic** (Definition 5.4), and Proposition 5.5 bounds
SP-Cube's traffic on them by ``O(d^2 n)``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..relation.lattice import all_cuboids, mask_size
from ..relation.relation import Relation


def skewed_groups_by_cuboid(
    relation: Relation, memory_records: int
) -> Dict[int, Set[Tuple]]:
    """``{mask: {group values}}`` of all truly skewed c-groups."""
    skewed: Dict[int, Set[Tuple]] = {}
    for mask in all_cuboids(relation.schema.num_dimensions):
        heavy = {
            values
            for values, count in relation.group_sizes(mask).items()
            if count > memory_records
        }
        skewed[mask] = heavy
    return skewed


def monotonicity_violations(
    relation: Relation, memory_records: int
) -> List[Tuple[int, Tuple]]:
    """C-groups breaking Definition 5.4.

    Returns every non-skewed group all of whose direct sub-groups (one
    attribute dropped) are skewed.  An empty list means the relation is
    skewness-monotonic.

    Groups with a single attribute are exempt: their only sub-group is the
    apex ``(*, ..., *)``, which is skewed for every ``n > m``.  Reading
    Definition 5.4 without this exemption would make *no* relation
    monotonic, contradicting the paper's own flagship example for
    Proposition 5.5 ("no skews other than the most general c-group").
    """
    d = relation.schema.num_dimensions
    skewed = skewed_groups_by_cuboid(relation, memory_records)
    group_sizes = {
        mask: relation.group_sizes(mask) for mask in all_cuboids(d)
    }

    violations: List[Tuple[int, Tuple]] = []
    for mask in all_cuboids(d):
        if mask_size(mask) <= 1:
            continue
        dims = [i for i in range(d) if mask >> i & 1]
        for values in group_sizes[mask]:
            if values in skewed[mask]:
                continue
            if _all_subgroups_skewed(mask, values, dims, skewed):
                violations.append((mask, values))
    return violations


def is_skewness_monotonic(relation: Relation, memory_records: int) -> bool:
    """True iff the relation satisfies Definition 5.4."""
    return not monotonicity_violations(relation, memory_records)


def _all_subgroups_skewed(
    mask: int,
    values: Tuple,
    dims: List[int],
    skewed: Dict[int, Set[Tuple]],
) -> bool:
    for position, dim in enumerate(dims):
        child_mask = mask & ~(1 << dim)
        child_values = values[:position] + values[position + 1 :]
        if child_values not in skewed[child_mask]:
            return False
    return True
