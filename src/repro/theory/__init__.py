"""Theoretical predicates: skewness monotonicity and traffic bounds."""

from .bounds import (
    TrafficPlan,
    independent_traffic_bound,
    monotonic_traffic_bound,
    planned_traffic,
    prop56_skew_probability_bound,
    skewed_traffic_bound,
    worst_case_traffic,
)
from .skewness import (
    is_skewness_monotonic,
    monotonicity_violations,
    skewed_groups_by_cuboid,
)

__all__ = [
    "TrafficPlan",
    "independent_traffic_bound",
    "monotonic_traffic_bound",
    "planned_traffic",
    "prop56_skew_probability_bound",
    "skewed_traffic_bound",
    "worst_case_traffic",
    "is_skewness_monotonic",
    "monotonicity_violations",
    "skewed_groups_by_cuboid",
]
