"""Theoretical predicates: skewness monotonicity and traffic bounds."""

from .bounds import (
    TrafficPlan,
    expected_false_negatives,
    expected_false_positives,
    false_negative_probability,
    false_positive_probability,
    independent_traffic_bound,
    monotonic_traffic_bound,
    planned_traffic,
    prop56_skew_probability_bound,
    skewed_traffic_bound,
    worst_case_traffic,
)
from .skewness import (
    is_skewness_monotonic,
    monotonicity_violations,
    skewed_groups_by_cuboid,
)

__all__ = [
    "TrafficPlan",
    "expected_false_negatives",
    "expected_false_positives",
    "false_negative_probability",
    "false_positive_probability",
    "independent_traffic_bound",
    "monotonic_traffic_bound",
    "planned_traffic",
    "prop56_skew_probability_bound",
    "skewed_traffic_bound",
    "worst_case_traffic",
    "is_skewness_monotonic",
    "monotonicity_violations",
    "skewed_groups_by_cuboid",
]
