"""The online skew/straggler watchdog — typed runtime alerts per round.

The SP-Sketch makes its partitioning decisions *before* round 2 runs;
the cube doctor (PR 4) audits them *after* the run.  This module closes
the gap the ISSUE's motivating papers (SharesSkew, the marginal-cube
work) treat as first-class: detecting, **while the run is in flight**,
that a reducer is drifting past the load the theory promised, and saying
which cuboid put it there.

The watchdog inspects every job's flow record (built by the engine for
the :mod:`~repro.observability.lineage` recorder) at the job's merge
point and emits three typed alerts:

``skew_alert``
    A reducer's delivered records exceed ``tolerance`` times the
    Prop 4.2(2) band ``n/k + m``, with ``n``/``k`` the job's *observed*
    reduce totals and ``m`` the configured reducer memory.  For jobs
    with a registered sketch expectation (SP-Cube's round 2) the skew
    reducer 0 is exempt — it is *supposed* to absorb the heavy groups —
    and the band uses the ranged reducers only.

``misannotation_alert``
    Only for expectation jobs: a value-partitioned (ranged) cuboid put
    more than ``tolerance × (n/k + m)`` records on one reducer — it is
    behaving like a batch cuboid, i.e. the sketch missed a skewed group
    and range-routed it whole.  Named per cuboid so the operator can
    jump straight to ``explain-group``.

``straggler_alert``
    A task's (simulated) duration exceeds ``straggler_factor`` times the
    median of its phase — the attempt-duration-quantile rule, guarded by
    a minimum task count so tiny phases cannot alarm.

Alerts are plain dicts (the lineage artifact's ``alert`` records); the
engine surfaces each through the tracer (typed trace events →
ProgressSink ``[watch]`` lines), the telemetry counter
``repro_watchdog_alerts_total{kind}``, and the lineage artifact.  Like
every observability layer the watchdog is observation-only and keeps its
own logical clock, and a detached run pays one attribute check
(:data:`NULL_WATCHDOG`).

For expectation jobs the watchdog also retains the predicted-vs-observed
per-reducer comparison (:attr:`Watchdog.comparisons`); on a fault-free
run the deltas are all zero and the observed side equals
:func:`repro.observability.diagnostics.attribute_load`'s ``actual``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional

#: Multiple of the ``n/k + m`` band a reducer (or a cuboid's flow into
#: one reducer) may reach before alerting — matches the doctor's
#: :data:`repro.observability.diagnostics.BALANCE_TOLERANCE`.
SKEW_TOLERANCE = 2.0

#: Multiple of the phase-median task duration that flags a straggler.
STRAGGLER_FACTOR = 3.0

#: Phases with fewer tasks than this are never straggler-checked.
MIN_STRAGGLER_TASKS = 4

#: Alert kinds, in the order checks run.
ALERT_KINDS = ("skew_alert", "misannotation_alert", "straggler_alert")


@dataclass
class WatchdogExpectation:
    """Sketch-predicted reducer loads registered for one job by name."""

    job: str
    #: Input rows of the round (Prop 4.2's ``n``).
    n: int
    #: Sketch partitions (ranged reducers ``1..k``).
    k: int
    #: Reducer memory in records (the skew threshold ``m``).
    m: int
    #: Predicted delivered records per reducer id.
    predicted: Dict[int, int] = field(default_factory=dict)


class NullWatchdog:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False
    clock = 0.0

    def expect(self, job: str, *, n: int, k: int, m: int,
               predicted: Dict[int, int]) -> None:
        pass

    def inspect_job(self, flow_job: Dict, metrics) -> List[Dict]:
        return []

    def advance(self, seconds: float) -> None:
        pass


#: Shared no-op watchdog; safe because it carries no state.
NULL_WATCHDOG = NullWatchdog()


class Watchdog:
    """Compare observed shuffle flows against the theory, per round."""

    enabled = True

    def __init__(
        self,
        skew_tolerance: float = SKEW_TOLERANCE,
        straggler_factor: float = STRAGGLER_FACTOR,
        min_straggler_tasks: int = MIN_STRAGGLER_TASKS,
    ):
        if skew_tolerance <= 0 or straggler_factor <= 0:
            raise ValueError("watchdog tolerances must be positive")
        self.skew_tolerance = skew_tolerance
        self.straggler_factor = straggler_factor
        self.min_straggler_tasks = min_straggler_tasks
        #: Cumulative simulated seconds inspected so far (own clock, like
        #: telemetry's — alert times cannot depend on a tracer being
        #: attached).
        self.clock = 0.0
        #: Every alert emitted, in order.
        self.alerts: List[Dict] = []
        #: Per expectation job: predicted/observed/delta reducer loads.
        self.comparisons: Dict[str, Dict] = {}
        self._expectations: Dict[str, WatchdogExpectation] = {}
        self._executions: Dict[str, int] = {}

    # -- configuration -------------------------------------------------------

    def expect(self, job: str, *, n: int, k: int, m: int,
               predicted: Dict[int, int]) -> None:
        """Register sketch-predicted loads for ``job`` (SP-Cube round 2)."""
        self._expectations[job] = WatchdogExpectation(
            job=job, n=n, k=k, m=m, predicted=dict(predicted)
        )

    # -- inspection (engine-facing) ------------------------------------------

    def inspect_job(self, flow_job: Dict, metrics) -> List[Dict]:
        """Check one finished job's flows; returns the new alerts.

        Called by the engine for *every* job a watchdog-carrying cluster
        runs (so execution indices track re-executed rounds); aborted
        executions are counted but never inspected — their flows are
        partial by definition.
        """
        name = flow_job["job"]
        execution = self._executions.get(name, 0)
        self._executions[name] = execution + 1
        if metrics.aborted:
            return []
        at = round(self.clock + metrics.total_seconds, 9)
        expectation = self._expectations.get(name)
        alerts: List[Dict] = []

        def alert(kind: str, **fields) -> None:
            record = {
                "type": "alert",
                "kind": kind,
                "job": name,
                "execution": execution,
                "at": at,
            }
            record.update(fields)
            alerts.append(record)

        self._check_skew(flow_job, expectation, alert)
        if expectation is not None:
            self._check_misannotation(flow_job, expectation, alert)
            self._record_comparison(flow_job, expectation)
        self._check_stragglers(flow_job, alert)

        self.alerts.extend(alerts)
        return alerts

    def advance(self, seconds: float) -> None:
        """Advance the watchdog's simulated clock (one round finished)."""
        self.clock += seconds

    # -- checks --------------------------------------------------------------

    def _check_skew(self, flow_job, expectation, alert) -> None:
        """Observed per-reducer records vs the ``n/k + m`` band."""
        reduces = flow_job["reduces"]
        if expectation is not None:
            # Reducer 0 absorbs the sketch-flagged skewed groups by
            # design; the Prop 4.2(2) promise covers the ranged ones.
            reduces = [task for task in reduces if task["task"] != 0]
        if not reduces:
            return
        n_observed = sum(task["records_in"] for task in reduces)
        k_active = len(reduces)
        bound = n_observed / k_active + flow_job["memory_records"]
        ceiling = self.skew_tolerance * bound
        for task in reduces:
            observed = task["records_in"]
            if observed > ceiling:
                alert(
                    "skew_alert",
                    reducer=task["task"],
                    observed=observed,
                    bound=round(bound, 2),
                    ratio=round(observed / bound, 2),
                    tolerance=self.skew_tolerance,
                )

    def _check_misannotation(self, flow_job, expectation, alert) -> None:
        """Per-cuboid flow into one ranged reducer vs its own band."""
        loads: Dict[int, Dict[int, int]] = {}
        for flow in flow_job["flows"]:
            reducer = flow["reducer"]
            if reducer == 0:
                continue
            for mask, count in flow["cuboids"].items():
                if mask is None:
                    continue
                per_reducer = loads.setdefault(mask, {})
                per_reducer[reducer] = per_reducer.get(reducer, 0) + count
        bound = expectation.n / expectation.k + expectation.m
        ceiling = self.skew_tolerance * bound
        for mask in sorted(loads):
            for reducer in sorted(loads[mask]):
                observed = loads[mask][reducer]
                if observed > ceiling:
                    alert(
                        "misannotation_alert",
                        cuboid=mask,
                        reducer=reducer,
                        observed=observed,
                        bound=round(bound, 2),
                        ratio=round(observed / bound, 2),
                        tolerance=self.skew_tolerance,
                    )

    def _check_stragglers(self, flow_job, alert) -> None:
        """Winning-attempt durations vs the phase median."""
        for phase, tasks in (
            ("map", flow_job["maps"]),
            ("reduce", flow_job["reduces"]),
        ):
            if len(tasks) < self.min_straggler_tasks:
                continue
            typical = median(task["seconds"] for task in tasks)
            if typical <= 0:
                continue
            ceiling = self.straggler_factor * typical
            for task in tasks:
                if task["seconds"] > ceiling:
                    alert(
                        "straggler_alert",
                        phase=phase,
                        task=task["task"],
                        seconds=round(task["seconds"], 9),
                        median_seconds=round(typical, 9),
                        ratio=round(task["seconds"] / typical, 2),
                        factor=self.straggler_factor,
                    )

    def _record_comparison(self, flow_job, expectation) -> None:
        """Retain predicted vs observed loads for post-run attribution."""
        observed = {
            task["task"]: task["records_in"]
            for task in flow_job["reduces"]
        }
        reducers = sorted(
            set(expectation.predicted) | set(observed)
            | set(range(flow_job["num_reducers"]))
        )
        self.comparisons[flow_job["job"]] = {
            "execution": flow_job.get("execution", 0),
            "predicted": dict(expectation.predicted),
            "observed": observed,
            "deltas": {
                reducer: (
                    observed.get(reducer, 0)
                    - expectation.predicted.get(reducer, 0)
                )
                for reducer in reducers
            },
        }


def watchdog_of(cluster) -> Optional["Watchdog"]:
    """The cluster's watchdog when one is attached and enabled."""
    watchdog = getattr(cluster, "watchdog", None)
    if watchdog is not None and watchdog.enabled:
        return watchdog
    return None
