"""Sketch-quality and load-balance diagnostics — the "cube doctor".

SP-Cube's performance rests on two *predictions* the SP-Sketch makes in
round 1: which c-groups are skewed (sample count above ``beta`` implies
true size above ``m``), and where to cut each cuboid so the ``k`` range
partitions carry near-equal load (Proposition 4.2).  Execution traces
(PR 3) show what the cluster *did*; this module measures whether the
sketch's predictions *held* for a concrete dataset:

* :func:`audit_sketch` — compares a built sketch against exact ground
  truth computed from the relation: per-cuboid skew-classification
  confusion (precision / recall / F1 against the true ``> m`` threshold),
  partition-balance statistics (max/mean load vs the ideal ``n/k``, Gini
  coefficient), and empirical verification of the Section 4.2 Chernoff
  bounds via :mod:`repro.theory.bounds`.  The audit flags *problems* —
  high-confidence misclassifications and out-of-band imbalance — which is
  how a corrupted or badly sampled sketch is caught.

* :func:`attribute_load` — joins a run's trace with the sketch: the
  per-reducer load is re-derived from the sketch alone (skew flushes to
  reducer 0, range-routed emissions to reducers ``1..k``, broken down by
  cuboid) and diffed against the ``records_in`` the trace recorded.  In
  a fault-free paper-configuration run the two must match record-for-
  record; a mismatch localizes routing drift to a reducer.

* :func:`run_doctor` / :func:`format_doctor_markdown` — the ``doctor``
  CLI's engine: sweeps both synthetic generators over their skew knobs,
  audits SP-Cube's sketch on each dataset, attributes reducer load, runs
  the requested engines side by side, and emits one JSON-able report
  (plus a markdown rendering) with a ``problems`` list and a ``healthy``
  verdict.

Everything here is read-only over relations, sketches and traces — the
doctor never influences the run it diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# NOTE: repro.core / repro.theory are imported inside the functions that
# need them.  The engine imports this package's tracer module, so pulling
# the algorithm stack in at module scope would close an import cycle
# (observability -> diagnostics -> core -> engine -> observability).
from ..relation.lattice import all_cuboids, project
from .analyze import TraceAnalysis

#: A misclassification whose Chernoff tail is below this is "confident":
#: the theory says it essentially cannot happen by sampling luck, so its
#: presence indicates a corrupted sketch (or a broken builder).
CONFIDENT_MISS_PROBABILITY = 0.05

#: Partition-load tolerance: flag a cuboid when its heaviest partition
#: (excluding skewed groups, as Prop 4.2(2) does) exceeds this multiple
#: of the proposition's promise.  Exact elements guarantee at most
#: ``n/k + m`` tuples per partition: consecutive elements are ``n/k``
#: positions apart in the sorted cuboid (skewed tuples included — that
#: is how Definition 4.1 cuts), and one non-skewed group of up to ``m``
#: tuples may straddle a boundary.  2x the promise leaves room for
#: sampled-quantile error without masking genuinely broken elements.
BALANCE_TOLERANCE = 2.0

#: Absolute slack on observed-vs-expected misclassification counts: the
#: expectation bounds are means, so a handful of extra hits is noise.
COUNT_SLACK = 2.0


def _gini(loads: Sequence[int]) -> float:
    """Gini coefficient of a load vector (0 = perfectly even)."""
    n = len(loads)
    total = sum(loads)
    if n == 0 or total == 0:
        return 0.0
    ordered = sorted(loads)
    weighted = sum((index + 1) * load for index, load in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


@dataclass
class SkewConfusion:
    """Skew-classification outcome of one cuboid (or the whole sketch)."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def add(self, other: "SkewConfusion") -> None:
        self.true_positives += other.true_positives
        self.false_positives += other.false_positives
        self.false_negatives += other.false_negatives

    def to_dict(self) -> Dict:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }


@dataclass
class BalanceStats:
    """Partition-load statistics of one cuboid, skewed groups excluded."""

    loads: List[int]
    #: Fair share of the cuboid's *non-skewed* mass: ``total / k``.
    ideal: float
    #: Prop 4.2(2)'s per-partition promise for exact elements:
    #: ``n / k + m`` (see :data:`BALANCE_TOLERANCE`).
    promised: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.loads)

    @property
    def max_load(self) -> int:
        return max(self.loads) if self.loads else 0

    @property
    def mean_load(self) -> float:
        return self.total / len(self.loads) if self.loads else 0.0

    @property
    def imbalance(self) -> float:
        """Max/ideal load factor (1.0 = perfectly balanced)."""
        return self.max_load / self.ideal if self.ideal else 0.0

    @property
    def gini(self) -> float:
        return _gini(self.loads)

    def to_dict(self) -> Dict:
        return {
            "loads": list(self.loads),
            "ideal": round(self.ideal, 2),
            "promised": round(self.promised, 2),
            "max_load": self.max_load,
            "mean_load": round(self.mean_load, 2),
            "imbalance": round(self.imbalance, 3),
            "gini": round(self.gini, 4),
        }


@dataclass
class CuboidAudit:
    """Ground-truth comparison for one cuboid of the lattice."""

    mask: int
    true_skewed: int
    predicted_skewed: int
    confusion: SkewConfusion
    balance: BalanceStats
    #: False negatives whose Chernoff miss probability is below the
    #: confident threshold — strong evidence of sketch corruption.
    confident_false_negatives: List[Tuple] = field(default_factory=list)
    confident_false_positives: List[Tuple] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "mask": self.mask,
            "true_skewed": self.true_skewed,
            "predicted_skewed": self.predicted_skewed,
            "confusion": self.confusion.to_dict(),
            "balance": self.balance.to_dict(),
            "confident_false_negatives": [
                list(values) for values in self.confident_false_negatives
            ],
            "confident_false_positives": [
                list(values) for values in self.confident_false_positives
            ],
        }


@dataclass
class TheoryChecks:
    """Empirical verification of the paper's probability/traffic bounds."""

    emitted_tuples: int
    worst_case_bound: int
    expected_false_negatives: float
    observed_false_negatives: int
    expected_false_positives: float
    observed_false_positives: int

    @property
    def traffic_within_worst_case(self) -> bool:
        """Theorem 5.3 ceiling — must hold for *every* relation/sketch."""
        return self.emitted_tuples <= self.worst_case_bound

    @property
    def false_negatives_within_bound(self) -> bool:
        return self.observed_false_negatives <= (
            self.expected_false_negatives + COUNT_SLACK
        )

    @property
    def false_positives_within_bound(self) -> bool:
        return self.observed_false_positives <= (
            self.expected_false_positives + COUNT_SLACK
        )

    def to_dict(self) -> Dict:
        return {
            "emitted_tuples": self.emitted_tuples,
            "worst_case_bound": self.worst_case_bound,
            "traffic_within_worst_case": self.traffic_within_worst_case,
            "expected_false_negatives": round(
                self.expected_false_negatives, 4
            ),
            "observed_false_negatives": self.observed_false_negatives,
            "false_negatives_within_bound": (
                self.false_negatives_within_bound
            ),
            "expected_false_positives": round(
                self.expected_false_positives, 4
            ),
            "observed_false_positives": self.observed_false_positives,
            "false_positives_within_bound": (
                self.false_positives_within_bound
            ),
        }


@dataclass
class SketchAudit:
    """The full audit of one sketch against one relation."""

    relation_name: str
    num_rows: int
    num_dimensions: int
    num_partitions: int
    memory_records: int
    cuboids: Dict[int, CuboidAudit]
    overall: SkewConfusion
    theory: TheoryChecks
    balance_tolerance: float = BALANCE_TOLERANCE
    monotonicity_error: Optional[str] = None
    planner_error: Optional[str] = None
    sketch_summary: Dict = field(default_factory=dict)

    @property
    def worst_imbalance(self) -> float:
        """The worst audited cuboid's max-load factor."""
        audited = [
            audit.balance.imbalance
            for audit in self.cuboids.values()
            if audit.balance.total >= len(audit.balance.loads)
        ]
        return max(audited) if audited else 0.0

    @property
    def mean_gini(self) -> float:
        audited = [
            audit.balance.gini
            for audit in self.cuboids.values()
            if audit.balance.total >= len(audit.balance.loads)
        ]
        return sum(audited) / len(audited) if audited else 0.0

    def problems(self) -> List[str]:
        """Human-readable findings that indicate a bad sketch."""
        found: List[str] = []
        if self.monotonicity_error is not None:
            found.append(
                f"skew monotonicity violated: {self.monotonicity_error}"
            )
        if self.planner_error is not None:
            found.append(
                f"marking planner rejects the sketch: {self.planner_error}"
            )
        if not self.theory.traffic_within_worst_case:
            found.append(
                "planned traffic exceeds the Theorem 5.3 worst case "
                f"({self.theory.emitted_tuples} > "
                f"{self.theory.worst_case_bound} records)"
            )
        if not self.theory.false_negatives_within_bound:
            found.append(
                f"{self.theory.observed_false_negatives} skewed groups "
                "missed where the Chernoff bound expects at most "
                f"{self.theory.expected_false_negatives:.2f}"
            )
        if not self.theory.false_positives_within_bound:
            found.append(
                f"{self.theory.observed_false_positives} groups wrongly "
                "flagged skewed where the Chernoff bound expects at most "
                f"{self.theory.expected_false_positives:.2f}"
            )
        for mask, audit in sorted(self.cuboids.items()):
            for values in audit.confident_false_negatives:
                found.append(
                    f"cuboid {mask:#x}: truly skewed group {values!r} "
                    "missing from the sketch (miss probability < "
                    f"{CONFIDENT_MISS_PROBABILITY})"
                )
            for values in audit.confident_false_positives:
                found.append(
                    f"cuboid {mask:#x}: group {values!r} flagged skewed "
                    "but far below the memory threshold"
                )
            balance = audit.balance
            ceiling = self.balance_tolerance * balance.promised
            if (
                balance.total >= len(balance.loads)
                and balance.max_load > ceiling
            ):
                found.append(
                    f"cuboid {mask:#x}: unbalanced partitions — max load "
                    f"{balance.max_load} exceeds "
                    f"{self.balance_tolerance}x the n/k + m promise "
                    f"{balance.promised:.0f} (Prop 4.2(2) ceiling "
                    f"{ceiling:.0f})"
                )
        return found

    @property
    def healthy(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict:
        return {
            "relation": self.relation_name,
            "num_rows": self.num_rows,
            "num_dimensions": self.num_dimensions,
            "num_partitions": self.num_partitions,
            "memory_records": self.memory_records,
            "overall": self.overall.to_dict(),
            "worst_imbalance": round(self.worst_imbalance, 3),
            "mean_gini": round(self.mean_gini, 4),
            "theory": self.theory.to_dict(),
            "cuboids": {
                str(mask): audit.to_dict()
                for mask, audit in sorted(self.cuboids.items())
            },
            "sketch": self.sketch_summary,
            "problems": self.problems(),
            "healthy": self.healthy,
        }


def audit_sketch(
    relation,
    sketch,
    memory_records: int,
    balance_tolerance: float = BALANCE_TOLERANCE,
) -> SketchAudit:
    """Audit ``sketch`` against exact ground truth from ``relation``.

    ``memory_records`` is the skew threshold ``m`` the sketch was built
    for (``ClusterConfig.derive_memory``); ground truth per cuboid is the
    exact group-size census ``|set(g)| > m``.
    """
    from ..core.partition import partition_loads
    from ..theory.bounds import (
        expected_false_negatives,
        expected_false_positives,
        false_negative_probability,
        false_positive_probability,
        planned_traffic,
        worst_case_traffic,
    )

    d = relation.schema.num_dimensions
    k = sketch.num_partitions
    n = len(relation)

    cuboid_audits: Dict[int, CuboidAudit] = {}
    overall = SkewConfusion()
    fn_sizes: List[int] = []  # true sizes of missed skewed groups
    skewed_sizes: List[int] = []
    non_skewed_sizes: List[int] = []
    observed_fp = 0

    for mask in all_cuboids(d):
        sizes = relation.group_sizes(mask)
        truly_skewed = {
            values for values, count in sizes.items()
            if count > memory_records
        }
        predicted = set(sketch.cuboids[mask].skewed)
        confusion = SkewConfusion(
            true_positives=len(predicted & truly_skewed),
            false_positives=len(predicted - truly_skewed),
            false_negatives=len(truly_skewed - predicted),
        )
        overall.add(confusion)
        skewed_sizes.extend(sizes[values] for values in truly_skewed)
        non_skewed_sizes.extend(
            count for values, count in sizes.items()
            if values not in truly_skewed
        )
        observed_fp += confusion.false_positives
        fn_sizes.extend(
            sizes[values] for values in truly_skewed - predicted
        )

        confident_fn = sorted(
            values
            for values in truly_skewed - predicted
            if false_negative_probability(sizes[values], n, k, memory_records)
            < CONFIDENT_MISS_PROBABILITY
        )
        confident_fp = sorted(
            values
            for values in predicted - truly_skewed
            if false_positive_probability(
                sizes.get(values, 0), n, k, memory_records
            )
            < CONFIDENT_MISS_PROBABILITY
        )

        loads = partition_loads(
            relation.rows,
            mask,
            d,
            sketch.cuboids[mask].partition_elements,
            k,
            exclude_groups=truly_skewed,
        )
        ideal = max(sum(loads) / k, 1.0)
        # Every tuple projects into every cuboid, so the element spacing
        # of Definition 4.1 promises at most n/k + m tuples per partition
        # (skewed tuples included in the spacing, one group straddling).
        promised = n / k + memory_records
        cuboid_audits[mask] = CuboidAudit(
            mask=mask,
            true_skewed=len(truly_skewed),
            predicted_skewed=len(predicted),
            confusion=confusion,
            balance=BalanceStats(loads=loads, ideal=ideal, promised=promised),
            confident_false_negatives=confident_fn,
            confident_false_positives=confident_fp,
        )

    # A corrupted sketch can be rejected outright by the marking planner
    # (a skewed node above a non-skewed one is impossible for any sample);
    # the audit must survive that and report it, not crash.
    planner_error = None
    emitted = 0
    try:
        emitted = planned_traffic(relation, sketch).emitted_tuples
    except Exception as error:
        planner_error = str(error)
    theory = TheoryChecks(
        emitted_tuples=emitted,
        worst_case_bound=worst_case_traffic(d, n),
        expected_false_negatives=expected_false_negatives(
            skewed_sizes, n, k, memory_records
        ),
        observed_false_negatives=overall.false_negatives,
        expected_false_positives=expected_false_positives(
            non_skewed_sizes, n, k, memory_records
        ),
        observed_false_positives=observed_fp,
    )

    monotonicity_error = None
    try:
        sketch.validate_monotonic()
    except Exception as error:  # SketchError — keep the message only
        monotonicity_error = str(error)

    return SketchAudit(
        relation_name=relation.name,
        num_rows=n,
        num_dimensions=d,
        num_partitions=k,
        memory_records=memory_records,
        cuboids=cuboid_audits,
        overall=overall,
        theory=theory,
        balance_tolerance=balance_tolerance,
        monotonicity_error=monotonicity_error,
        planner_error=planner_error,
        sketch_summary=sketch.to_dict(),
    )


# -- load attribution ---------------------------------------------------------


@dataclass
class LoadAttribution:
    """Per-reducer load, predicted from the sketch vs observed in a trace.

    Reducer 0 is Algorithm 3's skew reducer (its records are per-mapper
    flushes of partially aggregated skewed groups); reducers ``1..k`` are
    the range partitions.  ``by_cuboid`` breaks each reducer's predicted
    records down by the base cuboid that routed them there.
    """

    num_reducers: int
    predicted: Dict[int, int]
    actual: Optional[Dict[int, int]]
    by_cuboid: Dict[int, Dict[int, int]]
    skew_by_cuboid: Dict[int, int]

    @property
    def predicted_total(self) -> int:
        return sum(self.predicted.values())

    @property
    def matches(self) -> Optional[bool]:
        """True when the trace delivered exactly the predicted records."""
        if self.actual is None:
            return None
        reducers = range(self.num_reducers)
        return all(
            self.predicted.get(r, 0) == self.actual.get(r, 0)
            for r in reducers
        )

    def mismatches(self) -> List[Tuple[int, int, int]]:
        """``(reducer, predicted, actual)`` rows that disagree."""
        if self.actual is None:
            return []
        return [
            (r, self.predicted.get(r, 0), self.actual.get(r, 0))
            for r in range(self.num_reducers)
            if self.predicted.get(r, 0) != self.actual.get(r, 0)
        ]

    def to_dict(self) -> Dict:
        return {
            "num_reducers": self.num_reducers,
            "predicted": {str(r): c for r, c in sorted(self.predicted.items())},
            "actual": (
                None
                if self.actual is None
                else {str(r): c for r, c in sorted(self.actual.items())}
            ),
            "matches": self.matches,
            "mismatches": [list(row) for row in self.mismatches()],
            "by_cuboid": {
                str(r): {str(mask): c for mask, c in sorted(masks.items())}
                for r, masks in sorted(self.by_cuboid.items())
            },
            "skew_by_cuboid": {
                str(mask): c
                for mask, c in sorted(self.skew_by_cuboid.items())
            },
        }


def predicted_reducer_loads(
    relation, sketch, num_mappers: Optional[int] = None
) -> LoadAttribution:
    """Re-derive round 2's per-reducer record delivery from the sketch.

    Walks every tuple's marking plan exactly as the mapper does: ranged
    emissions go to ``1 + partition_of(base)``, and each mapper's close()
    flushes one record per distinct skewed c-group it touched — counted
    here by replaying the engine's ``relation.split(k)`` input split.
    """
    from ..core.planner import plan_tuple

    d = sketch.num_dimensions
    k = sketch.num_partitions
    predicted: Dict[int, int] = {r: 0 for r in range(k + 1)}
    by_cuboid: Dict[int, Dict[int, int]] = {}

    for row in relation:
        plan = plan_tuple(row, sketch)
        for base_mask, _covered in plan.emissions:
            values = project(row, base_mask, d)
            reducer = 1 + sketch.partition_of(base_mask, values)
            predicted[reducer] += 1
            cuboids = by_cuboid.setdefault(reducer, {})
            cuboids[base_mask] = cuboids.get(base_mask, 0) + 1

    skew_by_cuboid: Dict[int, int] = {}
    for chunk in relation.split(num_mappers or k):
        seen = set()
        for row in chunk:
            plan = plan_tuple(row, sketch)
            for mask in plan.skewed_masks:
                seen.add((mask, project(row, mask, d)))
        predicted[0] += len(seen)
        for mask, _values in seen:
            skew_by_cuboid[mask] = skew_by_cuboid.get(mask, 0) + 1
    if skew_by_cuboid:
        by_cuboid[0] = dict(skew_by_cuboid)

    return LoadAttribution(
        num_reducers=k + 1,
        predicted=predicted,
        actual=None,
        by_cuboid=by_cuboid,
        skew_by_cuboid=skew_by_cuboid,
    )


def attribute_load(
    relation,
    sketch,
    analysis: Optional[TraceAnalysis] = None,
    job: str = "sp-cube",
    num_mappers: Optional[int] = None,
) -> LoadAttribution:
    """Join the sketch's predicted routing with a trace's observed loads.

    ``analysis`` is a :class:`TraceAnalysis` over a run traced at task
    level or finer (so reduce-attempt ``records_in`` counters exist); with
    no trace the attribution carries predictions only.
    """
    attribution = predicted_reducer_loads(relation, sketch, num_mappers)
    if analysis is not None:
        attribution.actual = analysis.reducer_records(job)
    return attribution


# -- the doctor driver --------------------------------------------------------


def run_doctor(
    rows: int = 4000,
    machines: int = 8,
    engines: Optional[Sequence[str]] = None,
    binomial_skews: Sequence[float] = (0.1, 0.4),
    zipf_exponents: Sequence[float] = (1.1, 1.6),
    seed: int = 0,
    balance_tolerance: float = BALANCE_TOLERANCE,
) -> Dict:
    """Run the full diagnostic battery; returns one JSON-able report.

    For every dataset of the binomial and Zipf sweeps: compute the cube
    with SP-Cube under a task-level tracer, audit its sketch against
    exact ground truth, attribute per-reducer load (predicted vs traced),
    and run the other requested engines for the side-by-side balance and
    runtime comparison.
    """
    # Imported here: the engine registry pulls in every baseline, which
    # module-level diagnostics imports must not force on trace-only users.
    from ..aggregates import Count
    from ..analysis.runner import paper_cluster
    from ..baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
    from ..core import SPCube
    from ..datagen import gen_binomial, gen_zipf
    from .tracer import MemorySink, Tracer

    engine_registry = {
        "spcube": SPCube,
        "naive": NaiveCube,
        "mrcube": MRCube,
        "hive": HiveCube,
        "pipesort": PipeSortMR,
    }
    engine_names = list(engines) if engines else sorted(engine_registry)
    unknown = [name for name in engine_names if name not in engine_registry]
    if unknown:
        raise ValueError(f"unknown engines: {unknown}")
    if "spcube" not in engine_names:
        # The sketch under audit comes from an SP-Cube run.
        engine_names = ["spcube"] + engine_names

    datasets = [
        (
            f"binomial(p={p:g})",
            lambda p=p, i=i: gen_binomial(rows, p, seed=seed + i),
            {"generator": "binomial", "skew": p},
        )
        for i, p in enumerate(binomial_skews)
    ] + [
        (
            f"zipf(s={s:g})",
            lambda s=s, i=i: gen_zipf(
                rows, exponent=s, seed=seed + 100 + i
            ),
            {"generator": "zipf", "exponent": s},
        )
        for i, s in enumerate(zipf_exponents)
    ]

    report: Dict = {
        "config": {
            "rows": rows,
            "machines": machines,
            "seed": seed,
            "engines": engine_names,
            "binomial_skews": list(binomial_skews),
            "zipf_exponents": list(zipf_exponents),
            "balance_tolerance": balance_tolerance,
        },
        "datasets": [],
        "problems": [],
    }

    for label, make_relation, params in datasets:
        relation = make_relation()
        entry: Dict = {"name": label, "params": params, "engines": {}}

        engine_rows: Dict[str, Dict] = {}
        sketch = None
        spcube_analysis = None
        for name in engine_names:
            sink = MemorySink()
            tracer = Tracer([sink], level="task")
            cluster = paper_cluster(rows, num_machines=machines)
            cluster.tracer = tracer
            run = engine_registry[name](cluster, Count()).compute(relation)
            tracer.close()
            metrics = run.metrics
            engine_rows[name] = {
                "total_seconds": round(metrics.total_seconds, 2),
                "map_output_mb": round(metrics.intermediate_bytes / 1e6, 3),
                "reducer_balance": round(metrics.reducer_balance, 3),
                "failed": metrics.failed,
            }
            if name == "spcube":
                sketch = run.sketch
                spcube_analysis = TraceAnalysis(sink.records)
                spcube_cube = run.cube
        entry["engines"] = engine_rows

        memory = paper_cluster(rows, num_machines=machines).derive_memory(
            len(relation)
        )
        audit = audit_sketch(
            relation, sketch, memory, balance_tolerance=balance_tolerance
        )
        entry["audit"] = audit.to_dict()
        attribution = attribute_load(relation, sketch, spcube_analysis)
        entry["attribution"] = attribution.to_dict()

        # Serving-store footprint: persist the SP-Cube result to a
        # scratch store and compare bytes on disk against the resident
        # cube, so store-format bloat (or a broken compression ratio)
        # surfaces in the same report as sketch quality.
        import os
        import tempfile

        from ..serving import CubeStore, estimate_cube_bytes

        spcube_run = spcube_cube
        in_memory_bytes = estimate_cube_bytes(spcube_run)
        with tempfile.TemporaryDirectory() as tmp:
            store_path = os.path.join(tmp, "doctor.store")
            store_bytes = CubeStore.write(
                spcube_run, store_path, aggregate="count"
            )
        entry["store"] = {
            "groups": spcube_run.num_groups,
            "in_memory_bytes": in_memory_bytes,
            "store_bytes": store_bytes,
            "ratio": round(
                store_bytes / in_memory_bytes if in_memory_bytes else 0.0, 4
            ),
        }

        for problem in audit.problems():
            report["problems"].append(f"{label}: {problem}")
        if attribution.matches is False:
            report["problems"].append(
                f"{label}: traced reducer loads diverge from the "
                f"sketch's routing at {attribution.mismatches()[:3]}"
            )
        report["datasets"].append(entry)

    report["healthy"] = not report["problems"]
    return report


def format_doctor_markdown(report: Dict) -> str:
    """Render a doctor report as a markdown document."""
    from ..analysis.report import format_markdown_table

    config = report["config"]
    lines = [
        "# Cube doctor report",
        "",
        f"Workloads of {config['rows']} rows on {config['machines']} "
        f"machines (seed {config['seed']}); engines: "
        f"{', '.join(config['engines'])}.",
        "",
        "## Sketch accuracy",
        "",
    ]
    accuracy_rows = []
    for entry in report["datasets"]:
        audit = entry["audit"]
        overall = audit["overall"]
        theory = audit["theory"]
        accuracy_rows.append(
            [
                entry["name"],
                str(overall["true_positives"] + overall["false_negatives"]),
                f"{overall['precision']:.3f}",
                f"{overall['recall']:.3f}",
                f"{overall['f1']:.3f}",
                f"{audit['worst_imbalance']:.2f}x",
                f"{audit['mean_gini']:.3f}",
                "yes" if theory["false_negatives_within_bound"]
                and theory["false_positives_within_bound"] else "NO",
            ]
        )
    lines.append(
        format_markdown_table(
            [
                "dataset", "true skewed", "precision", "recall", "F1",
                "worst imbalance", "mean Gini", "bounds hold",
            ],
            accuracy_rows,
        )
    )

    lines += ["", "## Reducer load attribution (SP-Cube)", ""]
    attribution_rows = []
    for entry in report["datasets"]:
        attribution = entry["attribution"]
        predicted = attribution["predicted"]
        skew = predicted.get("0", 0)
        ranged = sum(c for r, c in predicted.items() if r != "0")
        matches = attribution["matches"]
        attribution_rows.append(
            [
                entry["name"],
                str(skew),
                str(ranged),
                "n/a" if matches is None else ("yes" if matches else "NO"),
            ]
        )
    lines.append(
        format_markdown_table(
            ["dataset", "skew records (r0)", "ranged records",
             "trace matches"],
            attribution_rows,
        )
    )

    lines += ["", "## Engines side by side", ""]
    engine_rows = []
    for entry in report["datasets"]:
        for name, stats in entry["engines"].items():
            engine_rows.append(
                [
                    entry["name"],
                    name,
                    f"{stats['total_seconds']:.1f}",
                    f"{stats['map_output_mb']:.2f}",
                    f"{stats['reducer_balance']:.2f}",
                    "FAIL" if stats["failed"] else "ok",
                ]
            )
    lines.append(
        format_markdown_table(
            ["dataset", "engine", "time (s)", "map out (MB)",
             "max/mean reducer", "status"],
            engine_rows,
        )
    )

    # Reports written before the serving layer lack the store section;
    # render it only when every entry carries one.
    store_rows = [
        [
            entry["name"],
            str(entry["store"]["groups"]),
            f"{entry['store']['in_memory_bytes'] / 1e6:.2f}",
            f"{entry['store']['store_bytes'] / 1e6:.2f}",
            f"{entry['store']['ratio']:.3f}",
        ]
        for entry in report["datasets"]
        if "store" in entry
    ]
    if store_rows:
        lines += ["", "## Store footprint (SP-Cube)", ""]
        lines.append(
            format_markdown_table(
                ["dataset", "c-groups", "in-memory (MB)", "store (MB)",
                 "store/memory"],
                store_rows,
            )
        )

    lines += ["", "## Verdict", ""]
    if report["healthy"]:
        lines.append("All checks passed — the sketch predicts this data.")
    else:
        lines.append(f"{len(report['problems'])} problem(s) found:")
        lines.append("")
        for problem in report["problems"]:
            lines.append(f"- {problem}")
    return "\n".join(lines) + "\n"
