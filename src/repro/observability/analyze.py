"""Trace analysis: reconstruct a run's story from its record stream.

Given a JSON-lines trace (or the records of a
:class:`~repro.observability.tracer.MemorySink`), a :class:`TraceAnalysis`
rebuilds, without touching the simulator:

* **attempt chains** — every task's ordered list of attempts, with the
  killed ones and the speculative backups;
* **recovery counters** — attempts launched, attempts killed, speculative
  wins, tasks recovered — defined exactly as
  :class:`~repro.mapreduce.metrics.JobMetrics` counts them, so the
  analyzer's numbers can be diffed 1:1 against ``RunMetrics`` (the
  integration suite asserts the match);
* **per-reducer load** — records delivered to each reduce task of a job,
  the histogram the paper's balance argument (Section 6.2) rests on;
* **critical path / straggler timelines** — per phase, which task chain
  gates the round and how the other tasks' spans lay out against it.

The accounting identities used throughout (mirroring the engine):

* every *attempt span* is one first execution or one retry; a
  *speculation event* adds one backup attempt and one killed copy that
  have no span of their own (the backup's output is identical);
* a task *recovered* when its winning span has ``attempt > 0`` or status
  ``"speculative"``;
* a job's shuffled pairs are the ``records_in`` of its winning reduce
  attempt spans.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from .schema import record_problems


def load_trace(path) -> List[Dict]:
    """Read a JSON-lines trace file into a record list (seq order).

    Raises :class:`ValueError` naming the offending line on damaged
    files: a truncated final line fails the JSON parse, and a line that
    *is* valid JSON but not an object (``42``, ``"oops"``) — the other
    way a partial write corrupts a trace — is rejected here rather than
    surfacing later as an ``AttributeError`` inside the analyzer.
    """
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: trace record must be a JSON "
                    f"object, got {type(record).__name__}"
                )
            records.append(record)
    return records


class TraceAnalysis:
    """Indexed view over one trace's records."""

    def __init__(self, records: Iterable[Dict]):
        self.records: List[Dict] = sorted(
            records, key=lambda r: r.get("seq", 0)
        )
        self.runs = self._spans("run")
        self.jobs = self._spans("job")
        self.phases = self._spans("phase")
        self.attempts = self._spans("attempt")
        self.events = [r for r in self.records if r.get("type") == "event"]

    @classmethod
    def from_file(cls, path) -> "TraceAnalysis":
        return cls(load_trace(path))

    def _spans(self, kind: str) -> List[Dict]:
        return [
            r
            for r in self.records
            if r.get("type") == "span" and r.get("kind") == kind
        ]

    # -- validation ---------------------------------------------------------

    def validate(self) -> int:
        """Schema-check every record; returns the count or raises."""
        from .schema import TraceSchemaError

        for record in self.records:
            problems = record_problems(record)
            if problems:
                raise TraceSchemaError(
                    f"record seq={record.get('seq')} invalid: "
                    + "; ".join(problems)
                )
        return len(self.records)

    # -- filters ------------------------------------------------------------

    def job_names(self) -> List[str]:
        """Traced job names, in execution order."""
        seen: List[str] = []
        for span in self.jobs:
            if span["name"] not in seen:
                seen.append(span["name"])
        return seen

    def _select(self, records: List[Dict], job: Optional[str],
                phase: Optional[str] = None) -> List[Dict]:
        return [
            r
            for r in records
            if (job is None or r.get("job") == job)
            and (phase is None or r.get("phase") == phase)
        ]

    def _spec_events(self, job: Optional[str]) -> List[Dict]:
        return [
            e
            for e in self._select(self.events, job)
            if e.get("kind") == "speculation"
        ]

    # -- attempt chains and recovery counters -------------------------------

    def attempt_chains(
        self, job: Optional[str] = None
    ) -> Dict[Tuple[str, str, int], List[Dict]]:
        """``{(job, phase, task): [attempt spans in attempt order]}``."""
        chains: Dict[Tuple[str, str, int], List[Dict]] = {}
        for span in self._select(self.attempts, job):
            key = (span["job"], span["phase"], span["task"])
            chains.setdefault(key, []).append(span)
        for spans in chains.values():
            spans.sort(key=lambda s: s["attempt"])
        return chains

    def total_attempts(self, job: Optional[str] = None) -> int:
        """First executions + retries + speculative backups, as
        ``JobMetrics.attempts`` counts them."""
        return len(self._select(self.attempts, job)) + len(
            self._spec_events(job)
        )

    def killed_attempts(self, job: Optional[str] = None) -> int:
        """Crashed attempts plus losing speculative copies."""
        killed = sum(
            1
            for span in self._select(self.attempts, job)
            if span.get("status") == "killed"
        )
        return killed + len(self._spec_events(job))

    def speculative_wins(self, job: Optional[str] = None) -> int:
        return sum(
            1
            for event in self._spec_events(job)
            if event["fields"].get("won")
        )

    def recovered(self, job: Optional[str] = None) -> int:
        """Tasks that failed at least once but ultimately succeeded."""
        count = 0
        for spans in self.attempt_chains(job).values():
            winner = _winning(spans)
            if winner is not None and (
                winner["attempt"] > 0 or winner["status"] == "speculative"
            ):
                count += 1
        return count

    # -- failure domains and checkpoints ------------------------------------

    def _events_of_kind(self, kind: str, job: Optional[str] = None):
        return [
            e for e in self._select(self.events, job) if e.get("kind") == kind
        ]

    def nodes_lost(self, job: Optional[str] = None) -> List[int]:
        """Nodes reported dead (``node_lost`` events), in firing order."""
        return [
            e["fields"]["node"] for e in self._events_of_kind("node_lost", job)
        ]

    def checkpoint_writes(self, job: Optional[str] = None) -> List[Dict]:
        """The ``fields`` of every committed-round checkpoint event."""
        return [
            e["fields"] for e in self._events_of_kind("checkpoint_write", job)
        ]

    def resumed_rounds(self, job: Optional[str] = None) -> List[Dict]:
        """The ``fields`` of every ``round_resume`` event (partial reruns)."""
        return [
            e["fields"] for e in self._events_of_kind("round_resume", job)
        ]

    # -- watchdog alerts and lineage -----------------------------------------

    def alerts(self, job: Optional[str] = None,
               kind: Optional[str] = None) -> List[Dict]:
        """Watchdog alert events, in emission order.

        Each entry is the full event record (``kind``, ``job``, ``at``
        and the alert's ``fields``); filter by ``job`` and/or alert
        ``kind`` (``skew_alert`` / ``misannotation_alert`` /
        ``straggler_alert``).
        """
        from .watchdog import ALERT_KINDS

        return [
            e
            for e in self._select(self.events, job)
            if e.get("kind") in ALERT_KINDS
            and (kind is None or e.get("kind") == kind)
        ]

    def alert_counts(self) -> Dict[str, int]:
        """``{alert kind: count}`` over the whole trace (zero-free)."""
        counts: Dict[str, int] = {}
        for event in self.alerts():
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    def lineage_events(self, job: Optional[str] = None) -> List[Dict]:
        """Per-job ``lineage`` summary events (flow/record/byte totals)."""
        return self._events_of_kind("lineage", job)

    # -- per-reducer load ---------------------------------------------------

    def reducer_records(self, job: str) -> Dict[int, int]:
        """``{reduce task: records delivered}`` for one job."""
        loads: Dict[int, int] = {}
        for spans in self.attempt_chains(job).values():
            winner = _winning(spans)
            if winner is None or winner["phase"] != "reduce":
                continue
            loads[winner["task"]] = winner["counters"].get("records_in", 0)
        return dict(sorted(loads.items()))

    def dominant_job(self) -> Optional[str]:
        """The job shuffling the most pairs (the cube round, normally)."""
        best, best_pairs = None, -1
        for span in self.jobs:
            pairs = span["counters"].get("map_output_records", 0)
            if pairs > best_pairs:
                best, best_pairs = span["name"], pairs
        return best

    def reducer_histogram(self, job: str, width: int = 40) -> str:
        """Text histogram of per-reducer delivered records."""
        loads = self.reducer_records(job)
        if not loads:
            return f"(no reduce attempts traced for {job!r})"
        peak = max(loads.values()) or 1
        lines = [f"per-reducer records, job {job!r}:"]
        for task, records in loads.items():
            bar = "#" * max(1 if records else 0, round(width * records / peak))
            lines.append(f"  r{task:<3d} {records:>9d} {bar}")
        mean = sum(loads.values()) / len(loads)
        nonzero = [v for v in loads.values() if v]
        balance = (max(nonzero) / (sum(nonzero) / len(nonzero))) if nonzero else 0.0
        lines.append(
            f"  mean {mean:.1f} records/reducer, max/mean {balance:.2f}"
        )
        return "\n".join(lines)

    # -- timelines ----------------------------------------------------------

    def critical_path(self, job: str) -> List[Dict]:
        """Per phase of ``job``, the chain that gates the round.

        Returns one summary dict per traced phase: the task whose last
        attempt finishes latest, its attempt count, and its share of the
        phase duration.
        """
        summaries: List[Dict] = []
        for phase_span in self._select(self.phases, job):
            phase = phase_span["phase"]
            chains = {
                key: spans
                for key, spans in self.attempt_chains(job).items()
                if key[1] == phase
            }
            if not chains:
                continue
            key, spans = max(
                chains.items(), key=lambda item: item[1][-1]["t1"]
            )
            duration = phase_span["t1"] - phase_span["t0"]
            chain_end = spans[-1]["t1"]
            summaries.append(
                {
                    "phase": phase,
                    "task": key[2],
                    "attempts": len(spans),
                    "chain_seconds": chain_end - spans[0]["t0"],
                    "phase_seconds": duration,
                    "speculative": spans[-1]["status"] == "speculative",
                }
            )
        return summaries

    def straggler_timeline(
        self, job: str, phase: str = "reduce", width: int = 50
    ) -> str:
        """ASCII per-task timeline of one phase — stragglers stick out.

        Each task renders one row spanning its attempt chain; ``x`` marks
        the killed portion of the chain (lost attempts, detection,
        backoff), ``=`` the winning attempt, ``s`` a speculative winner.
        """
        chains = {
            key: spans
            for key, spans in self.attempt_chains(job).items()
            if key[1] == phase
        }
        if not chains:
            return f"(no {phase} attempts traced for {job!r})"
        t0 = min(spans[0]["t0"] for spans in chains.values())
        t1 = max(spans[-1]["t1"] for spans in chains.values())
        extent = max(t1 - t0, 1e-12)

        def column(t: float) -> int:
            return min(width - 1, int(width * (t - t0) / extent))

        lines = [
            f"{phase} timeline, job {job!r} "
            f"({t1 - t0:.1f}s simulated, {len(chains)} tasks):"
        ]
        for (_job, _phase, task), spans in sorted(chains.items()):
            row = [" "] * width
            winner = _winning(spans)
            for span in spans:
                lo, hi = column(span["t0"]), column(span["t1"])
                if span.get("status") == "killed":
                    mark = "x"
                elif span.get("status") == "speculative":
                    mark = "s"
                else:
                    mark = "="
                for i in range(lo, hi + 1):
                    row[i] = mark
            chain_seconds = spans[-1]["t1"] - spans[0]["t0"]
            note = f"{chain_seconds:7.1f}s {len(spans)} attempt(s)"
            if winner is None:
                note += ", EXHAUSTED"
            elif winner["status"] == "speculative":
                note += ", spec win"
            lines.append(f"  t{task:<3d}|{''.join(row)}| {note}")
        return "\n".join(lines)

    # -- summaries ----------------------------------------------------------

    def summary_dict(self) -> Dict:
        """Machine-readable run summary with a stable schema.

        The JSON twin of :meth:`format_summary`, consumed by
        ``analyze-trace --format json``, the HTML run report, and any
        downstream tooling that would otherwise scrape the text report.
        Keys are append-only: fields are never renamed or removed, only
        added (readers must tolerate unknown keys, matching the
        forward-compatibility contract of
        :meth:`~repro.mapreduce.metrics.RunMetrics.from_dict`).

        The shape is checked by :func:`summary_problems` before it leaves
        the process, so a refactor that silently drops a key fails loudly
        instead of shipping a summary that lies by omission.
        """
        runs = [
            {
                "name": run["name"],
                "seconds": run["t1"] - run["t0"],
                "status": run["status"],
            }
            for run in self.runs
        ]
        jobs = []
        for span in self.jobs:
            jobs.append(
                {
                    "name": span["name"],
                    "seconds": span["t1"] - span["t0"],
                    "status": span["status"],
                    "map_output_records": span["counters"].get(
                        "map_output_records", 0
                    ),
                    "attempts": self.total_attempts(span["name"]),
                }
            )
        lost = self.nodes_lost()
        dominant = self.dominant_job()
        reducer_loads = (
            {str(task): records
             for task, records in self.reducer_records(dominant).items()}
            if dominant is not None
            else {}
        )
        critical = (
            self.critical_path(dominant) if dominant is not None else []
        )
        summary = {
            "schema_version": 1,
            "records": len(self.records),
            "runs": runs,
            "recovery": self.recovery_summary(),
            "failure_domains": {
                "nodes_lost": sorted(set(lost)),
                "node_loss_events": len(lost),
                "round_resumes": len(self.resumed_rounds()),
                "checkpoints_committed": len(self.checkpoint_writes()),
            },
            "jobs": jobs,
            "dominant_job": dominant,
            "reducer_loads": reducer_loads,
            "critical_path": critical,
            "alerts": self.alert_counts(),
        }
        problems = summary_problems(summary)
        if problems:
            raise ValueError(
                "trace summary failed its own schema check: "
                + "; ".join(problems)
            )
        return summary

    def recovery_summary(self) -> Dict[str, int]:
        """The four recovery counters over the whole trace."""
        return {
            "attempts": self.total_attempts(),
            "killed": self.killed_attempts(),
            "speculative_wins": self.speculative_wins(),
            "recovered": self.recovered(),
        }

    def format_summary(self, timeline_width: int = 50) -> str:
        """The analyzer's full human-readable report."""
        lines: List[str] = []
        for run in self.runs:
            seconds = run["t1"] - run["t0"]
            lines.append(
                f"run {run['name']}: {seconds:.1f}s simulated, "
                f"status {run['status']}"
            )
        recovery = self.recovery_summary()
        lines.append(
            "recovery: {attempts} attempts, {killed} killed, "
            "{speculative_wins} speculative wins, "
            "{recovered} tasks recovered".format(**recovery)
        )
        lost = self.nodes_lost()
        if lost:
            resumes = self.resumed_rounds()
            lines.append(
                f"failure domains: {len(lost)} node(s) lost "
                f"({sorted(set(lost))}), {len(resumes)} round resume(s), "
                f"{len(self.checkpoint_writes())} checkpoint(s) committed"
            )
        alert_counts = self.alert_counts()
        if alert_counts:
            lines.append(
                "watchdog: "
                + ", ".join(
                    f"{count} {kind}"
                    for kind, count in sorted(alert_counts.items())
                )
            )
        for span in self.jobs:
            job_seconds = span["t1"] - span["t0"]
            lines.append(
                f"  job {span['name']}: {job_seconds:.1f}s, "
                f"{span['counters'].get('map_output_records', 0)} pairs, "
                f"{self.total_attempts(span['name'])} attempts, "
                f"status {span['status']}"
            )
        dominant = self.dominant_job()
        if dominant is not None:
            lines.append("")
            lines.append(self.reducer_histogram(dominant))
            for phase in ("map", "reduce"):
                if self._select(self.attempts, dominant, phase):
                    lines.append("")
                    lines.append(
                        self.straggler_timeline(
                            dominant, phase, width=timeline_width
                        )
                    )
            for summary in self.critical_path(dominant):
                lines.append(
                    f"critical path [{summary['phase']}]: task "
                    f"{summary['task']} ({summary['attempts']} attempts, "
                    f"{summary['chain_seconds']:.1f}s of the "
                    f"{summary['phase_seconds']:.1f}s phase"
                    + (", spec win)" if summary["speculative"] else ")")
                )
        return "\n".join(lines)


#: ``summary_dict`` top-level keys and the types readers may rely on.
#: Append-only: new keys may join, existing ones never change meaning.
SUMMARY_SCHEMA = {
    "schema_version": int,
    "records": int,
    "runs": list,
    "recovery": dict,
    "failure_domains": dict,
    "jobs": list,
    "dominant_job": (str, type(None)),
    "reducer_loads": dict,
    "critical_path": list,
    "alerts": dict,
}

_RECOVERY_KEYS = ("attempts", "killed", "speculative_wins", "recovered")
_DOMAIN_KEYS = (
    "nodes_lost",
    "node_loss_events",
    "round_resumes",
    "checkpoints_committed",
)


def summary_problems(summary: Dict) -> List[str]:
    """Validate a :meth:`TraceAnalysis.summary_dict` payload.

    Returns a list of human-readable problems (empty when valid).  Extra
    top-level keys are *allowed* — the schema is append-only — but every
    required key must be present with the promised type, every run/job
    entry must carry its mandatory fields, and the recovery/failure
    counters must all be present and non-negative.
    """
    problems: List[str] = []
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    for key, expected in SUMMARY_SCHEMA.items():
        if key not in summary:
            problems.append(f"missing key {key!r}")
        elif not isinstance(summary[key], expected):
            problems.append(
                f"key {key!r} has type {type(summary[key]).__name__}"
            )
    if problems:
        return problems
    if summary["schema_version"] < 1:
        problems.append("schema_version must be >= 1")
    for i, run in enumerate(summary["runs"]):
        for field in ("name", "seconds", "status"):
            if field not in run:
                problems.append(f"runs[{i}] missing {field!r}")
    for i, job in enumerate(summary["jobs"]):
        for field in (
            "name", "seconds", "status", "map_output_records", "attempts"
        ):
            if field not in job:
                problems.append(f"jobs[{i}] missing {field!r}")
    for key in _RECOVERY_KEYS:
        value = summary["recovery"].get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"recovery.{key} must be a non-negative int")
    for key in _DOMAIN_KEYS:
        if key not in summary["failure_domains"]:
            problems.append(f"failure_domains missing {key!r}")
    for task, records in summary["reducer_loads"].items():
        if not isinstance(task, str) or not isinstance(records, int):
            problems.append(
                f"reducer_loads[{task!r}] must map str task -> int records"
            )
            break
    for i, entry in enumerate(summary["critical_path"]):
        for field in ("phase", "task", "attempts", "chain_seconds"):
            if field not in entry:
                problems.append(f"critical_path[{i}] missing {field!r}")
    for kind, count in summary["alerts"].items():
        if not isinstance(kind, str) or not isinstance(count, int):
            problems.append(
                f"alerts[{kind!r}] must map str kind -> int count"
            )
            break
    return problems


def _winning(spans: List[Dict]) -> Optional[Dict]:
    """The chain's successful attempt, or None if it exhausted its budget."""
    for span in reversed(spans):
        if span.get("status") != "killed":
            return span
    return None
