"""Structured tracing for the simulated cluster.

A :class:`Tracer` receives typed span/event records (see
:mod:`repro.observability.schema`) from the engine, the fault layer and
the cube engines, stamps each with a monotonically increasing ``seq``,
and fans it out to pluggable sinks:

* :class:`MemorySink` — bounded in-process ring buffer (tests, ad hoc
  inspection);
* :class:`JsonlSink` — one JSON object per line, the archival format the
  analyzer (:mod:`repro.observability.analyze`) consumes;
* :class:`ProgressSink` — a human-readable live reporter printing one
  line per job/phase completion and per injected fault.

The default tracer everywhere is the singleton :data:`NULL_TRACER`, whose
methods are no-ops and whose ``enabled`` flag lets hot paths skip even
building a record — a traced-off run does no per-record work at all.

**Parallel-merge semantics.**  Task attempts may execute in worker
processes where no sink exists.  The attempt-chain driver
(:func:`repro.mapreduce.executor.run_task_chain`) therefore buffers its
records *chain-locally* into the returned
:class:`~repro.mapreduce.executor.TaskOutcome`; the engine's driver-side
merge loop — which already consumes outcomes in task-index order to keep
cubes bit-identical across backends — offsets the buffered records onto
the simulated timeline and emits them.  Trace files are thus byte-
identical between serial and parallel backends.

**Simulated clock.**  ``Tracer.clock`` is the cumulative simulated time
of everything traced so far; :func:`repro.mapreduce.engine.run_job`
advances it by each round's ``total_seconds``, so multi-round engines
(and several engines sharing a tracer) lay out on one global timeline.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional

from .schema import EVENT_KINDS, SPAN_KINDS  # noqa: F401  (re-exported)

#: Trace levels, coarse to fine.  ``job`` records run/job/phase spans and
#: job-level events; ``task`` adds per-attempt spans and fault events;
#: ``debug`` adds per-task route summaries and spill events.
LEVEL_OFF = 0
LEVEL_JOB = 1
LEVEL_TASK = 2
LEVEL_DEBUG = 3

LEVEL_NAMES = {"off": LEVEL_OFF, "job": LEVEL_JOB, "task": LEVEL_TASK,
               "debug": LEVEL_DEBUG}


def level_from_name(name: str) -> int:
    """Numeric trace level for a CLI-style name."""
    try:
        return LEVEL_NAMES[name]
    except KeyError:
        raise ValueError(
            f"unknown trace level {name!r}; choose from "
            f"{sorted(LEVEL_NAMES)}"
        ) from None


class NullTracer:
    """The zero-overhead default: every operation is a no-op.

    ``enabled`` is False so call sites guard record construction with a
    single attribute check; ``level`` is ``LEVEL_OFF`` so level-gated
    emitters (task buffers, route summaries) never activate.
    """

    enabled = False
    level = LEVEL_OFF
    clock = 0.0

    def emit(self, record: Dict) -> None:
        pass

    def span(self, kind: str, **fields) -> None:
        pass

    def event(self, kind: str, at: float, **fields) -> None:
        pass

    def advance(self, seconds: float) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op tracer; safe because it carries no state.
NULL_TRACER = NullTracer()


class Tracer:
    """Stamp records with ``seq`` and dispatch them to the sinks."""

    enabled = True

    def __init__(self, sinks: Iterable, level: int = LEVEL_TASK):
        if isinstance(level, str):
            level = level_from_name(level)
        if not LEVEL_OFF <= level <= LEVEL_DEBUG:
            raise ValueError(f"trace level must be in [0, 3], got {level}")
        self.sinks = list(sinks)
        self.level = level
        #: Cumulative simulated seconds traced so far (see module doc).
        self.clock = 0.0
        self._seq = 0

    def emit(self, record: Dict) -> None:
        """Assign the next ``seq`` and hand the record to every sink."""
        record["seq"] = self._seq
        self._seq += 1
        for sink in self.sinks:
            sink.write(record)

    def span(self, kind: str, **fields) -> None:
        """Emit a span record; ``t0``/``t1``/``name`` come via ``fields``."""
        record = {"type": "span", "kind": kind, "status": "ok",
                  "counters": {}}
        record.update(fields)
        self.emit(record)

    def event(self, kind: str, at: float, **fields) -> None:
        """Emit an event record at simulated time ``at``."""
        payload = fields.pop("fields", {})
        record = {"type": "event", "kind": kind, "at": at, "fields": payload}
        record.update(fields)
        self.emit(record)

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (one round finished)."""
        self.clock += seconds

    def close(self) -> None:
        """Flush and close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class MemorySink:
    """Bounded in-memory ring buffer of records (oldest evicted first)."""

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buffer: deque = deque(maxlen=capacity)

    def write(self, record: Dict) -> None:
        self._buffer.append(record)

    @property
    def records(self) -> List[Dict]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Append records to a file as JSON lines — the archival format."""

    def __init__(self, path):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")

    def write(self, record: Dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class ProgressSink:
    """Human-readable live progress: one line per job/phase and fault.

    Intended for a terminal (``--progress``); ignores attempt spans and
    debug records so the output stays one screenful even on large runs.
    """

    def __init__(self, stream=None):
        if stream is None:
            import sys

            stream = sys.stderr
        self._stream = stream

    def write(self, record: Dict) -> None:
        line = self._format(record)
        if line is not None:
            self._stream.write(line + "\n")

    def _format(self, record: Dict) -> Optional[str]:
        kind = record.get("kind")
        if record.get("type") == "span":
            seconds = record.get("t1", 0.0) - record.get("t0", 0.0)
            counters = record.get("counters", {})
            if kind == "run":
                return (
                    f"[run ] {record.get('name')}: {seconds:.1f}s simulated, "
                    f"{counters.get('attempts', 0)} attempts, "
                    f"status {record.get('status')}"
                )
            if kind == "job":
                return (
                    f"[job ] {record.get('name')}: {seconds:.1f}s, "
                    f"{counters.get('map_output_records', 0)} pairs shuffled, "
                    f"status {record.get('status')}"
                )
            if kind == "phase":
                return (
                    f"[{record.get('phase'):<5s}] {record.get('job')}: "
                    f"{counters.get('tasks', 0)} tasks, {seconds:.1f}s"
                )
            return None
        if kind in ("crash", "straggle", "speculation", "abort", "oom"):
            where = (
                f"{record.get('job')}/{record.get('phase')}/"
                f"{record.get('task')}"
            )
            return f"[fault] {kind} at {where} (t={record.get('at', 0):.1f}s)"
        if kind == "node_lost":
            fields = record.get("fields", {})
            return (
                f"[fault] node {fields.get('node')} lost during "
                f"{record.get('job')} (t={record.get('at', 0):.1f}s)"
            )
        if kind == "checkpoint_write":
            fields = record.get("fields", {})
            return (
                f"[ckpt ] round {fields.get('round')} checkpointed "
                f"({fields.get('num_parts')} parts, "
                f"t={record.get('at', 0):.1f}s)"
            )
        if kind == "round_resume":
            fields = record.get("fields", {})
            salvaged = fields.get("salvaged_partitions", [])
            return (
                f"[ckpt ] resuming round {fields.get('round')} "
                f"({record.get('job')}): {len(salvaged)} partitions "
                f"salvaged, nodes {fields.get('replaced_nodes')} replaced"
            )
        if kind == "skew_alert":
            fields = record.get("fields", {})
            return (
                f"[watch] skew_alert {record.get('job')}: reducer "
                f"{fields.get('reducer')} got {fields.get('observed')} "
                f"records, {fields.get('ratio', 0):.1f}x the n/k + m band "
                f"({fields.get('bound', 0):.0f})"
            )
        if kind == "misannotation_alert":
            fields = record.get("fields", {})
            cuboid = fields.get("cuboid")
            label = f"{cuboid:#x}" if isinstance(cuboid, int) else cuboid
            return (
                f"[watch] misannotation_alert {record.get('job')}: cuboid "
                f"{label} put {fields.get('observed')} records on reducer "
                f"{fields.get('reducer')} — value-partitioned but behaving "
                f"like a batch cuboid"
            )
        if kind == "straggler_alert":
            fields = record.get("fields", {})
            return (
                f"[watch] straggler_alert {record.get('job')}/"
                f"{fields.get('phase')}: task {fields.get('task')} ran "
                f"{fields.get('seconds', 0):.1f}s, "
                f"{fields.get('ratio', 0):.1f}x the phase median "
                f"({fields.get('median_seconds', 0):.1f}s)"
            )
        return None


def emit_run_span(tracer, metrics, base: float) -> None:
    """Emit one algorithm execution's ``run`` span.

    Called by every cube engine at the end of ``compute`` with the clock
    value it saw at the start; the span covers ``[base, tracer.clock]``
    (the jobs in between advanced the clock) and carries the run's
    headline counters so the analyzer can summarize without re-deriving
    them from job spans.
    """
    if not tracer.enabled:
        return
    if metrics.aborted:
        status = "aborted"
    elif metrics.failed:
        status = "failed"
    else:
        status = "ok"
    tracer.span(
        "run", name=metrics.algorithm,
        t0=base, t1=base + metrics.total_seconds, status=status,
        counters={
            "jobs": len(metrics.jobs),
            "output_groups": metrics.output_groups,
            "intermediate_bytes": metrics.intermediate_bytes,
            "intermediate_records": metrics.intermediate_records,
            "attempts": metrics.attempts,
            "killed_tasks": metrics.killed_tasks,
            "speculative_wins": metrics.speculative_wins,
            "recovered": metrics.recovered,
            "recovery_overhead_seconds": metrics.recovery_overhead(),
        },
    )


def attempt_counters(task) -> Dict[str, float]:
    """The standard counters of one task attempt, from its metrics.

    Shared by the worker-side buffer (executor) and any driver-side
    emitter so attempt spans always carry the same counter set; user
    counters (``TaskContext.incr``) are merged in.
    """
    counters = {
        "records_in": task.records_in,
        "records_out": task.records_out,
        "bytes_in": task.bytes_in,
        "bytes_out": task.bytes_out,
        "cpu_ops": task.cpu_ops,
        "spilled_records": task.spilled_records,
        "peak_group_records": task.peak_group_records,
    }
    if task.counters:
        counters.update(task.counters)
    return counters
