"""Analysis of telemetry timeline artifacts (JSONL).

:class:`TimelineAnalysis` loads the artifact written by
:meth:`repro.observability.telemetry.Telemetry.write_timeline` — a meta
header, one record per sample, and a final full registry dump — and
answers the questions the HTML report and CI ask of it: which series
exist, their per-series points and extrema, per-source splits, and the
registry rebuilt as a :class:`~repro.observability.telemetry.\
MetricsRegistry` so the Prometheus exposition can be regenerated from
the archived timeline alone (``python -m repro metrics-export``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .telemetry import MetricsRegistry


class TimelineError(ValueError):
    """The timeline artifact is malformed."""


class TimelineAnalysis:
    """Index a telemetry timeline's records for analysis."""

    def __init__(self, records: List[Dict]):
        self.meta: Dict = {}
        self.samples: List[Dict] = []
        self._registry_dump: Optional[Dict] = None
        for record in records:
            rtype = record.get("type")
            if rtype == "meta":
                self.meta = record
            elif rtype == "sample":
                if "series" not in record or "t" not in record:
                    raise TimelineError(
                        f"sample record missing series/t: {record!r}"
                    )
                self.samples.append(record)
            elif rtype == "registry":
                self._registry_dump = record.get("registry")
            else:
                raise TimelineError(f"unknown record type {rtype!r}")
        self._by_series: Dict[str, List[Dict]] = {}
        for sample in self.samples:
            self._by_series.setdefault(sample["series"], []).append(sample)

    @classmethod
    def from_file(cls, path) -> "TimelineAnalysis":
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise TimelineError(
                        f"{path}:{lineno}: not JSON: {exc}"
                    ) from None
        return cls(records)

    # -- access --------------------------------------------------------

    def series_names(self) -> List[str]:
        return sorted(self._by_series)

    def series(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> List[Dict]:
        """Samples of one series (optionally exact-matching ``labels``),
        in emission order (non-decreasing logical time)."""
        samples = self._by_series.get(name, [])
        if labels is None:
            return list(samples)
        want = {str(k): str(v) for k, v in labels.items()}
        return [s for s in samples if s.get("labels", {}) == want]

    def points(self, name: str,
               labels: Optional[Dict[str, str]] = None
               ) -> List[Tuple[float, float]]:
        """``(t, value)`` pairs of one series."""
        return [(s["t"], s["value"]) for s in self.series(name, labels)]

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        """The distinct label sets a series was sampled with."""
        seen, out = set(), []
        for sample in self._by_series.get(name, []):
            key = tuple(sorted(sample.get("labels", {}).items()))
            if key not in seen:
                seen.add(key)
                out.append(dict(key))
        return out

    def sources(self, name: str) -> List[str]:
        return sorted({s.get("source", "sim")
                       for s in self._by_series.get(name, [])})

    def sim_samples(self) -> List[Dict]:
        """Samples on the deterministic simulated axis only — the subset
        that must be bit-identical between serial and parallel runs."""
        return [s for s in self.samples if s.get("source", "sim") == "sim"]

    def registry(self) -> MetricsRegistry:
        """The final metrics registry rebuilt from the embedded dump."""
        if self._registry_dump is None:
            raise TimelineError(
                "timeline has no registry record; was it written by "
                "Telemetry.write_timeline?"
            )
        return MetricsRegistry.from_dict(self._registry_dump)

    def has_registry(self) -> bool:
        return self._registry_dump is not None

    # -- summaries -----------------------------------------------------

    def series_summary(self, name: str) -> Dict:
        """Headline numbers for one series across all its label sets."""
        samples = self._by_series.get(name, [])
        values = [s["value"] for s in samples]
        times = [s["t"] for s in samples]
        return {
            "series": name,
            "samples": len(samples),
            "label_sets": len(self.label_sets(name)),
            "sources": self.sources(name),
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            "last": values[-1] if values else None,
            "t0": min(times) if times else None,
            "t1": max(times) if times else None,
        }

    def summary_dict(self) -> Dict:
        """Machine-readable digest of the whole timeline."""
        return {
            "run_id": self.meta.get("run_id", ""),
            "clock": self.meta.get("clock"),
            "cadence": self.meta.get("cadence"),
            "num_samples": len(self.samples),
            "dropped": self.meta.get("dropped", 0),
            "series": [self.series_summary(n) for n in self.series_names()],
            "has_registry": self.has_registry(),
        }

    def format_summary(self) -> str:
        """Human-readable digest, one line per series."""
        lines = []
        meta = self.meta
        run_id = meta.get("run_id") or "<unnamed>"
        lines.append(
            f"timeline {run_id}: {len(self.samples)} samples across "
            f"{len(self._by_series)} series, clock {meta.get('clock', 0)}s"
            + (f", {meta.get('dropped', 0)} dropped by cadence"
               if meta.get("dropped") else "")
        )
        for name in self.series_names():
            s = self.series_summary(name)
            sources = "+".join(s["sources"])
            lines.append(
                f"  {name:<28s} {s['samples']:>5d} samples "
                f"[{sources}]  min {_fmt(s['min'])}  max {_fmt(s['max'])}  "
                f"last {_fmt(s['last'])}"
            )
        if not self._by_series:
            lines.append("  (no samples)")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))
