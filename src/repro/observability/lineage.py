"""The shuffle flight recorder — per-flow lineage of every shuffle edge.

Traces (PR 3) record *what ran* and telemetry (PR 8) records *how much*,
but neither can answer the operator question the ROADMAP's production
north-star demands: *why is this reducer hot — which cuboid's groups
landed on it, emitted by which map tasks, fed by which input splits?*
This module records exactly that join key: one **flow edge** per
``(map task, reducer partition)`` pair of every job, carrying the
record/byte volume of the edge and a per-cuboid breakdown classified by
the job's :attr:`~repro.mapreduce.engine.MapReduceJob.cuboid_of`
function.

Like the tracer and the telemetry collector, the recorder is:

* **driver-side** — flows are taken from the engine's deterministic
  task-index-order merge loop, never from workers, so the artifact is
  bit-identical between the serial and parallel backends (including
  under injected task and node faults);
* **logical-clock stamped** — the recorder keeps its own simulated
  clock, advanced per job by the engine, so job records carry ``t0``
  independent of whether a tracer or telemetry collector is attached;
* **a null object by default** — :data:`NULL_LINEAGE` makes a detached
  run pay a single attribute check.

Re-executed rounds (the checkpoint layer's node-loss resume) appear as
distinct *executions* of the same job name; salvaged partitions that did
not re-run are listed in the job record's ``completed_reducers`` so the
explain walk knows their flows live in the previous execution.

The artifact is JSONL: a ``lineage_meta`` record, then per job a ``job``
record followed by its ``map_task``, ``flow`` and ``reduce_task``
records, then the watchdog's ``alert`` records (if a watchdog ran).
:func:`load_lineage` reads it back with line-numbered errors, mirroring
:func:`repro.observability.analyze.load_trace`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Artifact format version, bumped on incompatible record changes.
LINEAGE_VERSION = 1

#: Record types a lineage artifact may contain, in document order.
LINEAGE_RECORD_TYPES = (
    "lineage_meta",
    "job",
    "map_task",
    "flow",
    "reduce_task",
    "alert",
)


def cuboid_of_mask_key(key):
    """Cuboid (lattice mask) of a ``(mask, values[, shard])`` shuffle key.

    The emission-key shape shared by the naive, Hive, MR-Cube and
    PipeSort-MR engines; module-level so parallel workers can pickle the
    job it is attached to.
    """
    return key[0]


class NullLineage:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False
    clock = 0.0

    def begin_job(self, flow_job: Dict) -> None:
        pass

    def finish_job(self, flow_job: Dict, metrics) -> None:
        pass

    def advance(self, seconds: float) -> None:
        pass


#: Shared no-op recorder; safe because it carries no state.
NULL_LINEAGE = NullLineage()


class LineageRecorder:
    """Accumulate per-job shuffle flows into one deterministic artifact.

    The engine builds one *flow job* dict per round (see
    ``repro.mapreduce.engine._run_job``) holding ``maps`` / ``flows`` /
    ``reduces`` lists in merge order; the recorder stamps it with an
    execution index and a logical start time, collects it on finish, and
    serializes everything with sorted keys so two runs that did the same
    work produce byte-identical files.
    """

    enabled = True

    def __init__(self, run_id: str = "run"):
        self.run_id = run_id
        #: Cumulative simulated seconds recorded so far (independent of
        #: the tracer/telemetry clocks — see the telemetry module's
        #: clock-independence rationale).
        self.clock = 0.0
        #: Finished flow-job dicts, in completion order.
        self.jobs: List[Dict] = []
        #: Watchdog alert dicts, in emission order (engine-appended).
        self.alerts: List[Dict] = []
        self._executions: Dict[str, int] = {}

    # -- recording (engine-facing) -------------------------------------------

    def begin_job(self, flow_job: Dict) -> None:
        """Stamp a new flow job with its execution index and start time."""
        name = flow_job["job"]
        execution = self._executions.get(name, 0)
        self._executions[name] = execution + 1
        flow_job["execution"] = execution
        flow_job["t0"] = round(self.clock, 9)

    def finish_job(self, flow_job: Dict, metrics) -> None:
        """Collect a completed (or aborted) flow job."""
        flow_job["seconds"] = round(metrics.total_seconds, 9)
        flow_job["aborted"] = metrics.aborted
        self.jobs.append(flow_job)

    def advance(self, seconds: float) -> None:
        """Advance the recorder's simulated clock (one round finished)."""
        self.clock += seconds

    # -- serialization -------------------------------------------------------

    def to_records(self) -> List[Dict]:
        """The artifact as a flat record list (the JSONL line sequence)."""
        records: List[Dict] = [
            {
                "type": "lineage_meta",
                "version": LINEAGE_VERSION,
                "run_id": self.run_id,
            }
        ]
        for job in self.jobs:
            name, execution = job["job"], job["execution"]
            records.append(
                {
                    "type": "job",
                    "job": name,
                    "execution": execution,
                    "t0": job["t0"],
                    "seconds": job["seconds"],
                    "aborted": job["aborted"],
                    "num_reducers": job["num_reducers"],
                    "map_tasks": job["map_tasks"],
                    "completed_reducers": job["completed_reducers"],
                }
            )
            for task in job["maps"]:
                record = {"type": "map_task", "job": name,
                          "execution": execution}
                record.update(task)
                records.append(record)
            for flow in job["flows"]:
                records.append(
                    {
                        "type": "flow",
                        "job": name,
                        "execution": execution,
                        "map_task": flow["map_task"],
                        "reducer": flow["reducer"],
                        "records": flow["records"],
                        "bytes": flow["bytes"],
                        "cuboids": {
                            str(mask): count
                            for mask, count in flow["cuboids"].items()
                        },
                    }
                )
            for task in job["reduces"]:
                record = {"type": "reduce_task", "job": name,
                          "execution": execution}
                record.update(task)
                records.append(record)
        records.extend(self.alerts)
        return records

    def write(self, path) -> str:
        """Write the artifact as JSON lines; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return path


def lineage_of(cluster) -> Optional["LineageRecorder"]:
    """The cluster's lineage recorder when one is attached and enabled."""
    recorder = getattr(cluster, "lineage", None)
    if recorder is not None and recorder.enabled:
        return recorder
    return None


def load_lineage(path) -> List[Dict]:
    """Read a lineage artifact back as its record list.

    Raises :class:`ValueError` naming the offending line on damaged
    files (truncated writes, non-JSON garbage, JSON scalars) so CLI
    consumers can exit with a one-line reason instead of a traceback.
    """
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: lineage record must be a JSON "
                    f"object, got {type(record).__name__}"
                )
            records.append(record)
    if not records:
        raise ValueError(f"{path}: empty lineage artifact")
    head = records[0]
    if head.get("type") != "lineage_meta":
        raise ValueError(
            f"{path}:1: first record must be lineage_meta, "
            f"got {head.get('type')!r}"
        )
    return records
