"""The trace record schema — the contract between emitters and analyzers.

Every record the :class:`~repro.observability.tracer.Tracer` emits is a
flat JSON-serializable dict of one of two shapes:

**Span** — something with simulated duration::

    {
        "type": "span",
        "kind": "run" | "job" | "phase" | "attempt",
        "name": str,            # run: algorithm; job: job name;
                                # phase: "map"/"reduce"; attempt: "<phase>"
        "job": str,             # job/phase/attempt spans
        "phase": "map"|"reduce",# phase/attempt spans
        "task": int,            # attempt spans: task (machine) index
        "attempt": int,         # attempt spans: attempt index in the chain
        "t0": float, "t1": float,  # simulated seconds since trace start
        "status": "ok" | "killed" | "speculative" | "aborted" | "failed",
        "counters": {str: int|float},
        "seq": int,             # emission order, assigned by the tracer
    }

**Event** — something instantaneous::

    {
        "type": "event",
        "kind": "crash" | "straggle" | "speculation" | "spill" | "oom"
              | "route" | "shuffle" | "sketch" | "abort"
              | "node_lost" | "checkpoint_write" | "round_resume"
              | "lineage" | "skew_alert" | "misannotation_alert"
              | "straggler_alert",
        "job": str, "phase": str, "task": int, "attempt": int,  # optional
        "at": float,            # simulated seconds since trace start
        "fields": {...},        # kind-specific payload
        "seq": int,
    }

Simulated times are cumulative across an engine's rounds (and across
engines sharing one tracer), so a single trace file carries a global
timeline.  All tasks of a phase start when the phase's round startup
completes — the simulator's model of a fully parallel wave.

:func:`validate_record` enforces this schema without any third-party
dependency; the CI trace-smoke job runs it over every record of a real
fault-injected run (``python -m repro analyze-trace TRACE --validate``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: Span kinds, outermost first.
SPAN_KINDS = ("run", "job", "phase", "attempt")

#: Event kinds the engine, fault layer and engines emit.
EVENT_KINDS = (
    "crash",
    "straggle",
    "speculation",
    "spill",
    "oom",
    "route",
    "shuffle",
    "sketch",
    "abort",
    "node_lost",
    "checkpoint_write",
    "round_resume",
    "lineage",
    "skew_alert",
    "misannotation_alert",
    "straggler_alert",
)

#: Allowed values of a span's ``status`` field.
SPAN_STATUSES = ("ok", "killed", "speculative", "aborted", "failed")

_PHASES = ("map", "reduce")


class TraceSchemaError(ValueError):
    """A trace record does not conform to the documented schema."""


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def record_problems(record) -> List[str]:
    """All schema violations of one record (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not a dict"]
    rtype = record.get("type")
    if rtype == "span":
        problems.extend(_span_problems(record))
    elif rtype == "event":
        problems.extend(_event_problems(record))
    else:
        problems.append(f"type must be 'span' or 'event', got {rtype!r}")
        return problems
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append(f"seq must be a non-negative int, got {seq!r}")
    return problems


def _span_problems(record: Dict) -> List[str]:
    problems: List[str] = []
    kind = record.get("kind")
    if kind not in SPAN_KINDS:
        problems.append(f"span kind must be one of {SPAN_KINDS}, got {kind!r}")
        return problems
    if kind in ("run", "job") and not isinstance(record.get("name"), str):
        problems.append(f"{kind} span needs a string 'name'")
    if kind in ("job", "phase", "attempt") and not isinstance(
        record.get("job"), str
    ):
        problems.append(f"{kind} span needs a string 'job'")
    if kind in ("phase", "attempt") and record.get("phase") not in _PHASES:
        problems.append(f"{kind} span needs phase in {_PHASES}")
    if kind == "attempt":
        for field in ("task", "attempt"):
            value = record.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"attempt span needs int {field!r}")
    t0, t1 = record.get("t0"), record.get("t1")
    if not _is_number(t0) or not _is_number(t1):
        problems.append("span needs numeric t0 and t1")
    elif t1 < t0:
        problems.append(f"span ends before it starts (t0={t0}, t1={t1})")
    status = record.get("status")
    if status not in SPAN_STATUSES:
        problems.append(
            f"span status must be one of {SPAN_STATUSES}, got {status!r}"
        )
    counters = record.get("counters")
    if not isinstance(counters, dict):
        problems.append("span needs a 'counters' dict")
    else:
        for key, value in counters.items():
            if not isinstance(key, str) or not _is_number(value):
                problems.append(f"counter {key!r}={value!r} is not str->number")
                break
    return problems


def _event_problems(record: Dict) -> List[str]:
    problems: List[str] = []
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(
            f"event kind must be one of {EVENT_KINDS}, got {kind!r}"
        )
        return problems
    if not _is_number(record.get("at")):
        problems.append("event needs a numeric 'at'")
    if not isinstance(record.get("fields"), dict):
        problems.append("event needs a 'fields' dict")
    for field in ("task", "attempt"):
        if field in record:
            value = record[field]
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"event {field!r} must be an int")
    return problems


def validate_record(record) -> None:
    """Raise :class:`TraceSchemaError` if ``record`` violates the schema."""
    problems = record_problems(record)
    if problems:
        raise TraceSchemaError(
            f"invalid trace record {record!r}: " + "; ".join(problems)
        )


def validate_records(records: Iterable[Dict]) -> int:
    """Validate every record; returns the count, raises on the first bad one."""
    count = 0
    for index, record in enumerate(records):
        problems = record_problems(record)
        if problems:
            raise TraceSchemaError(
                f"record {index} invalid: " + "; ".join(problems)
            )
        count += 1
    return count
