"""Explain queries over a lineage artifact — from symptom back to cause.

The flight recorder (:mod:`repro.observability.lineage`) stores one flow
edge per ``(map task, reducer)`` pair with a per-cuboid record breakdown.
This module walks those edges to answer the two operator questions the
ISSUE's production scenario starts from:

* :func:`explain_reducer` — *why is this reducer hot?*  Aggregates every
  flow into one reducer of one job execution: which cuboids' groups
  landed there, emitted by which map tasks, fed by which input splits
  (map task ``i`` reads input split ``i`` — the engine's contract).
* :func:`explain_group` — *where did this cuboid's groups go?*
  Aggregates every flow carrying the cuboid across reducers and map
  tasks, so a doctor- or watchdog-flagged cuboid can be traced forward
  to the partitions it loaded.

Both default to the *dominant* job (most flow records — the cube round,
normally) and its latest execution, pull in the watchdog alerts that
mention the same reducer/cuboid, and return plain dicts;
:func:`format_explain_markdown` renders either as a report section.
Re-executed rounds are walked at their latest execution; partitions the
checkpoint layer salvaged are listed in the job's ``completed_reducers``
(their reduce task ran in an earlier execution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .lineage import load_lineage
from .watchdog import ALERT_KINDS


class ExplainError(ValueError):
    """The lineage artifact cannot answer the requested query."""


def parse_cuboid(text: str) -> int:
    """A cuboid mask from CLI text — decimal, ``0x`` hex, or ``0b`` binary."""
    try:
        return int(str(text), 0)
    except ValueError:
        raise ExplainError(
            f"cuboid must be a lattice mask (decimal, 0x hex or 0b "
            f"binary), got {text!r}"
        ) from None


class LineageIndex:
    """Indexed view over one lineage artifact's record list."""

    def __init__(self, records: List[Dict]):
        if not records or records[0].get("type") != "lineage_meta":
            raise ExplainError("not a lineage artifact (no lineage_meta head)")
        self.meta = records[0]
        self.run_id = self.meta.get("run_id", "run")
        #: ``{(job, execution): job record}``
        self.jobs: Dict[Tuple[str, int], Dict] = {}
        self.flows: Dict[Tuple[str, int], List[Dict]] = {}
        self.maps: Dict[Tuple[str, int], List[Dict]] = {}
        self.reduces: Dict[Tuple[str, int], List[Dict]] = {}
        self.alerts: List[Dict] = []
        for record in records[1:]:
            rtype = record.get("type")
            key = (record.get("job"), record.get("execution", 0))
            if rtype == "job":
                self.jobs[key] = record
            elif rtype == "flow":
                self.flows.setdefault(key, []).append(record)
            elif rtype == "map_task":
                self.maps.setdefault(key, []).append(record)
            elif rtype == "reduce_task":
                self.reduces.setdefault(key, []).append(record)
            elif rtype == "alert":
                self.alerts.append(record)

    @classmethod
    def from_file(cls, path) -> "LineageIndex":
        return cls(load_lineage(path))

    # -- selection -----------------------------------------------------------

    def job_names(self) -> List[str]:
        """Distinct job names, in first-recorded order."""
        seen: List[str] = []
        for name, _execution in self.jobs:
            if name not in seen:
                seen.append(name)
        return seen

    def latest_execution(self, job: str) -> Tuple[str, int]:
        """The latest recorded execution of ``job``."""
        executions = [e for (name, e) in self.jobs if name == job]
        if not executions:
            raise ExplainError(
                f"job {job!r} not in lineage artifact; "
                f"recorded jobs: {self.job_names()}"
            )
        return (job, max(executions))

    def dominant_job(self) -> str:
        """The job whose flows carry the most records (the cube round)."""
        totals: Dict[str, int] = {}
        for (name, _execution), flows in self.flows.items():
            totals[name] = totals.get(name, 0) + sum(
                flow["records"] for flow in flows
            )
        if not totals:
            raise ExplainError("lineage artifact records no flows")
        return max(sorted(totals), key=lambda name: totals[name])

    def alerts_for(self, job: str, *, reducer: Optional[int] = None,
                   cuboid: Optional[int] = None) -> List[Dict]:
        """Alerts of ``job`` touching the given reducer and/or cuboid."""
        matched = []
        for alert in self.alerts:
            if alert.get("kind") not in ALERT_KINDS:
                continue
            if alert.get("job") != job:
                continue
            if reducer is not None and "reducer" in alert \
                    and alert["reducer"] != reducer:
                continue
            if cuboid is not None and "cuboid" in alert \
                    and alert["cuboid"] != cuboid:
                continue
            matched.append(alert)
        return matched


def explain_reducer(
    records: List[Dict],
    job: Optional[str] = None,
    reducer: Optional[int] = None,
) -> Dict:
    """Walk the lineage from one reducer back to cuboids and input splits.

    Defaults: the dominant job's latest execution, and its hottest
    reducer (most delivered flow records).
    """
    index = records if isinstance(records, LineageIndex) \
        else LineageIndex(records)
    if job is None:
        job = index.dominant_job()
    key = index.latest_execution(job)
    flows = index.flows.get(key, [])
    if not flows:
        raise ExplainError(f"no flows recorded for job {job!r}")

    per_reducer: Dict[int, int] = {}
    for flow in flows:
        per_reducer[flow["reducer"]] = (
            per_reducer.get(flow["reducer"], 0) + flow["records"]
        )
    if reducer is None:
        reducer = max(sorted(per_reducer), key=lambda r: per_reducer[r])
    elif reducer not in per_reducer:
        raise ExplainError(
            f"reducer {reducer} received no flows in job {job!r}; "
            f"reducers seen: {sorted(per_reducer)}"
        )

    mine = [flow for flow in flows if flow["reducer"] == reducer]
    by_cuboid: Dict[int, int] = {}
    map_tasks: Dict[int, Dict] = {}
    for flow in mine:
        entry = map_tasks.setdefault(
            flow["map_task"],
            {"map_task": flow["map_task"], "input_split": flow["map_task"],
             "records": 0, "bytes": 0},
        )
        entry["records"] += flow["records"]
        entry["bytes"] += flow["bytes"]
        for mask, count in flow["cuboids"].items():
            mask = int(mask)
            by_cuboid[mask] = by_cuboid.get(mask, 0) + count

    job_record = index.jobs[key]
    total = sum(per_reducer.values())
    return {
        "query": "explain-reducer",
        "run_id": index.run_id,
        "job": job,
        "execution": key[1],
        "reducer": reducer,
        "records": per_reducer[reducer],
        "bytes": sum(flow["bytes"] for flow in mine),
        "share": per_reducer[reducer] / total if total else 0.0,
        "job_records": total,
        "num_reducers": job_record["num_reducers"],
        "by_cuboid": {
            str(mask): by_cuboid[mask]
            for mask in sorted(by_cuboid, key=lambda m: -by_cuboid[m])
        },
        "map_tasks": [map_tasks[task] for task in sorted(map_tasks)],
        "salvaged": reducer in job_record.get("completed_reducers", []),
        "alerts": index.alerts_for(job, reducer=reducer),
    }


def explain_group(
    records: List[Dict],
    cuboid: int,
    job: Optional[str] = None,
) -> Dict:
    """Walk the lineage from one cuboid forward to reducers and splits."""
    index = records if isinstance(records, LineageIndex) \
        else LineageIndex(records)
    if job is None:
        job = index.dominant_job()
    key = index.latest_execution(job)
    flows = index.flows.get(key, [])
    mask_key = str(cuboid)

    by_reducer: Dict[int, int] = {}
    map_tasks: Dict[int, Dict] = {}
    for flow in flows:
        count = flow["cuboids"].get(mask_key, 0)
        if not count:
            continue
        by_reducer[flow["reducer"]] = (
            by_reducer.get(flow["reducer"], 0) + count
        )
        entry = map_tasks.setdefault(
            flow["map_task"],
            {"map_task": flow["map_task"], "input_split": flow["map_task"],
             "records": 0},
        )
        entry["records"] += count
    if not by_reducer:
        seen = sorted(
            {int(mask) for flow in flows for mask in flow["cuboids"]}
        )
        raise ExplainError(
            f"cuboid {cuboid:#x} has no recorded flows in job {job!r}; "
            f"cuboids seen: {[hex(m) for m in seen]}"
        )

    total = sum(by_reducer.values())
    peak = max(by_reducer.values())
    return {
        "query": "explain-group",
        "run_id": index.run_id,
        "job": job,
        "execution": key[1],
        "cuboid": cuboid,
        "records": total,
        "by_reducer": {
            str(reducer): by_reducer[reducer]
            for reducer in sorted(by_reducer)
        },
        "hottest_reducer": max(
            sorted(by_reducer), key=lambda r: by_reducer[r]
        ),
        "concentration": peak / total if total else 0.0,
        "map_tasks": [map_tasks[task] for task in sorted(map_tasks)],
        "alerts": index.alerts_for(job, cuboid=cuboid),
    }


def format_explain_markdown(result: Dict) -> str:
    """Render an explain result as a small markdown report."""
    lines: List[str] = []
    if result["query"] == "explain-reducer":
        lines.append(
            f"## Reducer {result['reducer']} of `{result['job']}` "
            f"(execution {result['execution']}, run `{result['run_id']}`)"
        )
        lines.append("")
        lines.append(
            f"Received **{result['records']} records** "
            f"({result['bytes']} bytes) — "
            f"{100 * result['share']:.1f}% of the job's "
            f"{result['job_records']} shuffled records across "
            f"{result['num_reducers']} reducers."
        )
        if result["salvaged"]:
            lines.append(
                "Partition salvaged from a checkpoint: its reduce task ran "
                "in an earlier execution."
            )
        lines.append("")
        lines.append("| cuboid | records |")
        lines.append("|---|---|")
        for mask, count in result["by_cuboid"].items():
            lines.append(f"| {int(mask):#x} | {count} |")
        lines.append("")
        lines.append("| map task | input split | records | bytes |")
        lines.append("|---|---|---|---|")
        for entry in result["map_tasks"]:
            lines.append(
                f"| {entry['map_task']} | {entry['input_split']} "
                f"| {entry['records']} | {entry['bytes']} |"
            )
    else:
        lines.append(
            f"## Cuboid {result['cuboid']:#x} in `{result['job']}` "
            f"(execution {result['execution']}, run `{result['run_id']}`)"
        )
        lines.append("")
        lines.append(
            f"Shuffled **{result['records']} records**; hottest reducer "
            f"{result['hottest_reducer']} holds "
            f"{100 * result['concentration']:.1f}% of them."
        )
        lines.append("")
        lines.append("| reducer | records |")
        lines.append("|---|---|")
        for reducer, count in result["by_reducer"].items():
            lines.append(f"| {reducer} | {count} |")
        lines.append("")
        lines.append("| map task | input split | records |")
        lines.append("|---|---|---|")
        for entry in result["map_tasks"]:
            lines.append(
                f"| {entry['map_task']} | {entry['input_split']} "
                f"| {entry['records']} |"
            )
    if result["alerts"]:
        lines.append("")
        lines.append("### Watchdog alerts")
        lines.append("")
        for alert in result["alerts"]:
            detail = ", ".join(
                f"{k}={alert[k]}"
                for k in ("reducer", "cuboid", "observed", "bound", "ratio",
                          "phase", "task", "seconds")
                if k in alert
            )
            lines.append(f"- `{alert['kind']}` at t={alert['at']}: {detail}")
    return "\n".join(lines) + "\n"
