"""Runtime telemetry: metrics registry, sampling collector, exporters.

This module is the quantitative sibling of :mod:`repro.observability.tracer`:
where the tracer records *what happened* (typed spans and events), the
telemetry layer records *how much of everything there was and when* —
shuffle bytes per round, reducer load, checkpoint volume, node liveness,
driver RSS — as named metric series that can be charted, diffed, and
exported.

Three pieces:

* :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with Prometheus-style labels and fixed
  bucket schemas, serializable to/from plain dicts and renderable as
  Prometheus text exposition (:meth:`MetricsRegistry.prometheus_text`).
* :class:`Telemetry` — the sampling collector threaded through the engine:
  it owns a registry, a logical clock mirroring the tracer's simulated
  clock, and a timeline of ``(series, t, value, labels, source)`` samples
  taken on a logical-clock cadence.  :meth:`Telemetry.write_timeline`
  writes the JSONL artifact that :class:`~repro.observability.timeline.\
TimelineAnalysis` and ``python -m repro metrics-export`` consume.
* :func:`check_prometheus_text` — a hand-rolled line-format checker for
  the exposition output (no third-party dependencies), used by CI.

**Determinism.**  Samples carry a ``source`` tag.  ``"sim"`` samples are
functions of the simulated run only (shuffle bytes, phase seconds,
checkpoint bytes, node liveness, group counts) and are bit-identical
between serial and parallel backends on their logical-time axis — this
is tested.  ``"host"`` samples observe the real machine (driver RSS,
wall seconds, executor queue depth, broadcast cache hits) and are
excluded from identity comparisons, exactly like the ``executor`` and
wall-clock fields of :class:`~repro.mapreduce.metrics.JobMetrics`.

**Overhead.**  The default everywhere is the :data:`NULL_TELEMETRY`
singleton whose ``enabled`` flag is False; hot paths guard every
instrumentation point with a single attribute check, so a telemetry-off
run does no per-sample work at all.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Optional, Tuple

#: Fixed default bucket schema (powers of four, records/bytes-friendly).
#: Fixed schemas — not per-run adaptive ones — keep histograms mergeable
#: and comparable across runs, which the regression gate relies on.
DEFAULT_BUCKETS = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
    65536.0, 262144.0, 1048576.0, 4194304.0,
)

#: Fixed bucket schema for simulated-seconds histograms.
SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Sample source tags (see module docstring).
SOURCE_SIM = "sim"
SOURCE_HOST = "host"
SOURCES = (SOURCE_SIM, SOURCE_HOST)

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, str]]) -> _LabelsKey:
    """Canonical hashable form of a label set (sorted, stringified)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without the trailing .0."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelsKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class Counter:
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._values: Dict[_LabelsKey, float] = {}

    def inc(self, amount: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _labels_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labels_key(labels), 0.0)

    def series(self) -> List[Dict]:
        return [
            {"labels": dict(key), "value": self._values[key]}
            for key in sorted(self._values)
        ]

    def exposition_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} "
            f"{_format_value(self._values[key])}"
            for key in sorted(self._values)
        ]


class Gauge:
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._values: Dict[_LabelsKey, float] = {}

    def set(self, value: float,
            labels: Optional[Dict[str, str]] = None) -> None:
        self._values[_labels_key(labels)] = float(value)

    def inc(self, amount: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        key = _labels_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labels_key(labels), 0.0)

    def series(self) -> List[Dict]:
        return [
            {"labels": dict(key), "value": self._values[key]}
            for key in sorted(self._values)
        ]

    def exposition_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} "
            f"{_format_value(self._values[key])}"
            for key in sorted(self._values)
        ]


class Histogram:
    """Distribution over a fixed bucket schema (Prometheus semantics).

    Buckets are upper bounds; exposition renders them cumulatively with
    the implicit ``+Inf`` bucket equal to ``_count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing"
            )
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        # Per labels key: [per-bucket counts..., overflow], sum, count.
        self._counts: Dict[_LabelsKey, List[int]] = {}
        self._sums: Dict[_LabelsKey, float] = {}
        self._totals: Dict[_LabelsKey, int] = {}

    def observe(self, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        key = _labels_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._counts[key] = counts
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, labels: Optional[Dict[str, str]] = None) -> int:
        return self._totals.get(_labels_key(labels), 0)

    def sum(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._sums.get(_labels_key(labels), 0.0)

    def cumulative_counts(
        self, labels: Optional[Dict[str, str]] = None
    ) -> List[int]:
        """Cumulative per-bucket counts including the ``+Inf`` bucket."""
        counts = self._counts.get(_labels_key(labels))
        if counts is None:
            return [0] * (len(self.buckets) + 1)
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def series(self) -> List[Dict]:
        return [
            {
                "labels": dict(key),
                "counts": list(self._counts[key]),
                "sum": self._sums[key],
                "count": self._totals[key],
            }
            for key in sorted(self._counts)
        ]

    def exposition_lines(self) -> List[str]:
        lines = []
        for key in sorted(self._counts):
            running = 0
            for bound, c in zip(self.buckets, self._counts[key]):
                running += c
                le = _render_labels(key, f'le="{_format_value(bound)}"')
                lines.append(f"{self.name}_bucket{le} {running}")
            running += self._counts[key][-1]
            inf = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{inf} {running}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{self._totals[key]}")
        return lines


_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class MetricsRegistry:
    """Named instruments, each created once and looked up thereafter."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _register(self, instrument):
        if not _METRIC_NAME_RE.match(instrument.name):
            raise ValueError(f"invalid metric name {instrument.name!r}")
        existing = self._metrics.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise ValueError(
                    f"metric {instrument.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._metrics[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def prometheus_text(self) -> str:
        """The full registry in Prometheus text exposition format."""
        out = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            help_text = (metric.help or name).replace("\\", "\\\\")
            help_text = help_text.replace("\n", "\\n")
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {metric.kind}")
            out.extend(metric.exposition_lines())
        return "\n".join(out) + "\n" if out else ""

    def to_dict(self) -> Dict:
        metrics = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"name": name, "type": metric.kind, "help": metric.help,
                     "series": metric.series()}
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)
            metrics.append(entry)
        return {"metrics": metrics}

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        registry = cls()
        for entry in data.get("metrics", []):
            kind, name = entry["type"], entry["name"]
            help_text = entry.get("help", "")
            if kind == "counter":
                counter = registry.counter(name, help_text)
                for point in entry.get("series", []):
                    counter.inc(point["value"], labels=point.get("labels"))
            elif kind == "gauge":
                gauge = registry.gauge(name, help_text)
                for point in entry.get("series", []):
                    gauge.set(point["value"], labels=point.get("labels"))
            elif kind == "histogram":
                hist = registry.histogram(
                    name, help_text,
                    buckets=entry.get("buckets", DEFAULT_BUCKETS),
                )
                for point in entry.get("series", []):
                    key = _labels_key(point.get("labels"))
                    hist._counts[key] = [int(c) for c in point["counts"]]
                    hist._sums[key] = float(point["sum"])
                    hist._totals[key] = int(point["count"])
            else:
                raise ValueError(f"unknown metric type {kind!r}")
        return registry


class _NullInstrument:
    """Accepts every instrument operation and records nothing."""

    def inc(self, amount: float = 1.0, labels=None) -> None:
        pass

    def set(self, value: float, labels=None) -> None:
        pass

    def observe(self, value: float, labels=None) -> None:
        pass

    def value(self, labels=None) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The zero-overhead default: every operation is a no-op.

    Mirrors :class:`~repro.observability.tracer.NullTracer` — ``enabled``
    is False so instrumentation points skip even building a sample with
    one attribute check.  The instrument accessors hand back a shared
    no-op instrument rather than ``None``, so code that skips the
    ``enabled`` guard still cannot crash on the null object.
    """

    enabled = False
    clock = 0.0

    def sample(self, series: str, value: float, labels=None, at=None,
               source: str = SOURCE_SIM) -> None:
        pass

    def counter(self, name: str, help: str = ""):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = ""):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def advance(self, seconds: float) -> None:
        pass

    def write_timeline(self, path) -> None:
        pass

    def prometheus_text(self) -> str:
        return ""


#: Shared no-op telemetry; safe because it carries no state.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Sampling collector: a registry plus a logical-clock timeline.

    Parameters
    ----------
    cadence:
        Minimum logical-clock spacing, in simulated seconds, between two
        samples of the same ``(series, labels)`` pair.  0 keeps every
        sample.  Downsampling is deterministic — it depends only on the
        logical timestamps, never on wall time — so a cadence-limited
        serial run and parallel run drop exactly the same samples.
    run_id:
        Free-form identifier stamped into the timeline header.
    """

    enabled = True

    def __init__(self, cadence: float = 0.0, run_id: str = ""):
        if cadence < 0:
            raise ValueError("cadence must be >= 0")
        self.cadence = float(cadence)
        self.run_id = run_id
        self.registry = MetricsRegistry()
        #: Cumulative simulated seconds, advanced in lockstep with the
        #: tracer clock by :func:`repro.mapreduce.engine.run_job`.
        self.clock = 0.0
        self.samples: List[Dict] = []
        self._last_sample_at: Dict[Tuple[str, _LabelsKey], float] = {}
        self._dropped = 0

    # -- collection ----------------------------------------------------

    def sample(self, series: str, value: float,
               labels: Optional[Dict[str, str]] = None,
               at: Optional[float] = None,
               source: str = SOURCE_SIM) -> None:
        """Record one timeline point for ``series`` at logical time ``at``
        (default: the current logical clock), subject to the cadence."""
        if source not in SOURCES:
            raise ValueError(f"unknown sample source {source!r}")
        t = self.clock if at is None else float(at)
        key = (series, _labels_key(labels))
        if self.cadence > 0.0:
            last = self._last_sample_at.get(key)
            if last is not None and (t - last) < self.cadence:
                self._dropped += 1
                return
        self._last_sample_at[key] = t
        record = {"type": "sample", "series": series, "t": round(t, 9),
                  "value": value, "source": source}
        if labels:
            record["labels"] = {str(k): str(v) for k, v in labels.items()}
        self.samples.append(record)

    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self.registry.histogram(name, help, buckets)

    def advance(self, seconds: float) -> None:
        """Advance the logical clock (one job/round finished)."""
        self.clock += seconds

    @property
    def dropped_samples(self) -> int:
        """Samples suppressed by the cadence (for overhead accounting)."""
        return self._dropped

    # -- export --------------------------------------------------------

    def prometheus_text(self) -> str:
        return self.registry.prometheus_text()

    def timeline_records(self) -> List[Dict]:
        """The full JSONL payload: header, samples, final registry dump."""
        header = {
            "type": "meta", "version": 1, "run_id": self.run_id,
            "cadence": self.cadence, "clock": round(self.clock, 9),
            "num_samples": len(self.samples), "dropped": self._dropped,
        }
        registry_record = {"type": "registry",
                           "registry": self.registry.to_dict()}
        return [header] + self.samples + [registry_record]

    def write_timeline(self, path) -> None:
        """Write the timeline artifact (JSONL; see module docstring)."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.timeline_records():
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")


def driver_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, or ``None`` when
    the platform lacks the :mod:`resource` module.  A "host"-source
    quantity: real memory, excluded from determinism comparisons."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    import sys

    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def telemetry_of(cluster) -> "Telemetry":
    """The cluster's telemetry, defaulting to :data:`NULL_TELEMETRY`.

    Mirrors the ``cluster.tracer or NULL_TRACER`` idiom used by the
    engine; tolerates configs created before the field existed.
    """
    return getattr(cluster, "telemetry", None) or NULL_TELEMETRY


def emit_run_telemetry(cluster, metrics, dfs=None) -> None:
    """Record one algorithm execution's run-level metric series.

    The engine-level instrumentation (:mod:`repro.mapreduce.engine`)
    captures per-round quantities; this captures what only exists at run
    end — output cube group counts, sketch bytes, DFS volume, driver RSS.
    Called by every cube engine at the end of ``compute``, right next to
    :func:`~repro.observability.tracer.emit_run_span`; a no-op when the
    cluster carries no telemetry.
    """
    telemetry = telemetry_of(cluster)
    if not telemetry.enabled:
        return
    name = metrics.algorithm
    labels = {"run": name}
    telemetry.counter(
        "repro_runs_total", "Cube algorithm executions"
    ).inc(labels=labels)
    telemetry.gauge(
        "repro_cube_groups", "Output cube groups of the last execution"
    ).set(metrics.output_groups, labels=labels)
    telemetry.sample("cube_groups", metrics.output_groups, labels=labels)
    sketch_bytes = metrics.extras.get("sketch_bytes")
    if sketch_bytes is not None:
        telemetry.gauge(
            "repro_sketch_bytes", "Serialized SP-Sketch size"
        ).set(sketch_bytes, labels=labels)
        telemetry.sample("sketch_bytes", sketch_bytes, labels=labels)
    if dfs is not None:
        # Driver-side DFS accounting is deterministic (writes happen in
        # the merge order, read-drop coins are seeded), hence "sim".
        telemetry.sample("dfs_writes", dfs.writes, labels=labels)
        telemetry.sample("dfs_records_written", dfs.records_written,
                         labels=labels)
        if dfs.read_retries:
            telemetry.sample("dfs_read_retries", dfs.read_retries,
                             labels=labels)
        telemetry.gauge(
            "repro_dfs_files", "Files in the simulated DFS"
        ).set(len(dfs), labels=labels)
    rss = driver_rss_bytes()
    if rss is not None:
        telemetry.gauge(
            "repro_driver_rss_bytes", "Peak driver resident-set size"
        ).set(rss)
        telemetry.sample("driver_rss_bytes", rss, source=SOURCE_HOST)


# ---------------------------------------------------------------------------
# Prometheus text-format checker (hand-rolled; used by CI and tests).
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


def _parse_label_block(block: str) -> Optional[List[Tuple[str, str]]]:
    """Split ``{a="x",b="y"}`` into pairs; None when malformed."""
    inner = block[1:-1].strip()
    if not inner:
        return []
    pairs = []
    # Split on commas outside quotes.
    parts, depth, current = [], False, []
    for ch in inner:
        if ch == '"' and (not current or current[-1] != "\\"):
            depth = not depth
        if ch == "," and not depth:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    for part in parts:
        part = part.strip()
        if not _LABEL_RE.match(part):
            return None
        name, _, value = part.partition("=")
        pairs.append((name, value[1:-1]))
    return pairs


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def check_prometheus_text(text: str) -> List[str]:
    """Validate Prometheus text exposition; return a list of problems.

    Checks line syntax (metric names, label syntax, numeric values),
    HELP/TYPE comment structure, duplicate samples, histogram structure
    (``le`` on ``_bucket`` lines, cumulative monotonicity, a ``+Inf``
    bucket matching ``_count``), and that every sample belongs to a
    TYPE-declared family.  An empty list means the text is valid.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, _LabelsKey], float] = {}
    # histogram family -> base labels key -> list of (le, value)
    buckets: Dict[str, Dict[_LabelsKey, List[Tuple[float, float]]]] = {}
    counts: Dict[str, Dict[_LabelsKey, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 3 or fields[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if not _METRIC_NAME_RE.match(fields[2]):
                problems.append(
                    f"line {lineno}: invalid metric name {fields[2]!r}"
                )
                continue
            if fields[1] == "TYPE":
                if len(fields) != 4 or fields[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        f"line {lineno}: invalid TYPE line: {line!r}"
                    )
                    continue
                if fields[2] in types:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {fields[2]}"
                    )
                types[fields[2]] = fields[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        label_block = match.group("labels")
        pairs = _parse_label_block(label_block) if label_block else []
        if pairs is None:
            problems.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: non-numeric value "
                f"{match.group('value')!r}"
            )
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        key = (name, tuple(sorted(pairs)))
        if key in seen_samples:
            problems.append(f"line {lineno}: duplicate sample {line!r}")
        seen_samples[key] = value
        if types.get(family) == "histogram":
            base_pairs = tuple(sorted(p for p in pairs if p[0] != "le"))
            if name == family + "_bucket":
                le = dict(pairs).get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket missing le label"
                    )
                    continue
                le_value = _parse_value(le)
                if le_value is None:
                    problems.append(
                        f"line {lineno}: non-numeric le value {le!r}"
                    )
                    continue
                buckets.setdefault(family, {}).setdefault(
                    base_pairs, []
                ).append((le_value, value))
            elif name == family + "_count":
                counts.setdefault(family, {})[base_pairs] = value

    for family, by_labels in buckets.items():
        for base_pairs, points in by_labels.items():
            points = sorted(points)
            values = [v for _, v in points]
            if values != sorted(values):
                problems.append(
                    f"{family}: bucket counts not cumulative for labels "
                    f"{dict(base_pairs)}"
                )
            les = [le for le, _ in points]
            if math.inf not in les:
                problems.append(
                    f"{family}: missing +Inf bucket for labels "
                    f"{dict(base_pairs)}"
                )
            else:
                inf_value = dict(points)[math.inf]
                total = counts.get(family, {}).get(base_pairs)
                if total is not None and total != inf_value:
                    problems.append(
                        f"{family}: +Inf bucket ({inf_value}) != _count "
                        f"({total}) for labels {dict(base_pairs)}"
                    )
    return problems
