"""Observability for the simulated cluster: tracing, counters, analysis.

The paper's evaluation is an observability exercise — running time,
per-task averages, shuffled bytes, sketch size — and the fault layer and
parallel executor add per-task dynamics (retries, speculation, spills)
that post-hoc aggregates cannot show.  This package provides:

* :class:`Tracer` + sinks — structured span/event records emitted by the
  engine and the cube engines (:mod:`repro.observability.tracer`);
* the record schema and its validator
  (:mod:`repro.observability.schema`);
* :class:`TraceAnalysis` — per-reducer load, attempt chains and
  straggler timelines reconstructed from a trace file
  (:mod:`repro.observability.analyze`);
* :class:`Telemetry` — a metrics registry (counters/gauges/histograms)
  plus a logical-clock sampling collector with JSONL timeline and
  Prometheus text exporters (:mod:`repro.observability.telemetry`);
* :class:`TimelineAnalysis` — per-series analysis of a telemetry
  timeline artifact (:mod:`repro.observability.timeline`);
* :class:`LineageRecorder` — the shuffle flight recorder capturing one
  flow edge per (map task, reducer) pair, the artifact the
  ``explain-group`` / ``explain-reducer`` queries walk
  (:mod:`repro.observability.lineage` / ``.explain``);
* :class:`Watchdog` — online skew / misannotation / straggler alerts
  comparing observed flows against the sketch's ``n/k + m`` promise
  (:mod:`repro.observability.watchdog`).

Attach a tracer to a :class:`~repro.mapreduce.ClusterConfig` and every
job run on that cluster is traced::

    from repro.observability import JsonlSink, Tracer

    tracer = Tracer([JsonlSink("run.trace.jsonl")], level="task")
    cluster = ClusterConfig(num_machines=20, tracer=tracer)
    SPCube(cluster).compute(relation)
    tracer.close()

or use the CLI: ``python -m repro cube data.tsv --trace run.trace.jsonl``
then ``python -m repro analyze-trace run.trace.jsonl``.
"""

from .analyze import (
    SUMMARY_SCHEMA,
    TraceAnalysis,
    load_trace,
    summary_problems,
)
from .diagnostics import (
    BalanceStats,
    CuboidAudit,
    LoadAttribution,
    SketchAudit,
    SkewConfusion,
    TheoryChecks,
    attribute_load,
    audit_sketch,
    format_doctor_markdown,
    predicted_reducer_loads,
    run_doctor,
)
from .explain import (
    ExplainError,
    LineageIndex,
    explain_group,
    explain_reducer,
    format_explain_markdown,
    parse_cuboid,
)
from .lineage import (
    LINEAGE_RECORD_TYPES,
    LINEAGE_VERSION,
    NULL_LINEAGE,
    LineageRecorder,
    NullLineage,
    cuboid_of_mask_key,
    lineage_of,
    load_lineage,
)
from .telemetry import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    check_prometheus_text,
    driver_rss_bytes,
    emit_run_telemetry,
    telemetry_of,
)
from .timeline import TimelineAnalysis, TimelineError
from .watchdog import (
    ALERT_KINDS,
    NULL_WATCHDOG,
    SKEW_TOLERANCE,
    STRAGGLER_FACTOR,
    NullWatchdog,
    Watchdog,
    WatchdogExpectation,
    watchdog_of,
)
from .schema import (
    EVENT_KINDS,
    SPAN_KINDS,
    SPAN_STATUSES,
    TraceSchemaError,
    record_problems,
    validate_record,
    validate_records,
)
from .tracer import (
    LEVEL_DEBUG,
    LEVEL_JOB,
    LEVEL_OFF,
    LEVEL_TASK,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    ProgressSink,
    Tracer,
    attempt_counters,
    emit_run_span,
    level_from_name,
)

__all__ = [
    "SUMMARY_SCHEMA",
    "TraceAnalysis",
    "load_trace",
    "summary_problems",
    "BalanceStats",
    "CuboidAudit",
    "LoadAttribution",
    "SketchAudit",
    "SkewConfusion",
    "TheoryChecks",
    "attribute_load",
    "audit_sketch",
    "format_doctor_markdown",
    "predicted_reducer_loads",
    "run_doctor",
    "EVENT_KINDS",
    "SPAN_KINDS",
    "SPAN_STATUSES",
    "TraceSchemaError",
    "record_problems",
    "validate_record",
    "validate_records",
    "LEVEL_DEBUG",
    "LEVEL_JOB",
    "LEVEL_OFF",
    "LEVEL_TASK",
    "NULL_TRACER",
    "JsonlSink",
    "MemorySink",
    "NullTracer",
    "ProgressSink",
    "Tracer",
    "attempt_counters",
    "emit_run_span",
    "level_from_name",
    "DEFAULT_BUCKETS",
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTelemetry",
    "Telemetry",
    "check_prometheus_text",
    "driver_rss_bytes",
    "emit_run_telemetry",
    "telemetry_of",
    "TimelineAnalysis",
    "TimelineError",
    "ExplainError",
    "LineageIndex",
    "explain_group",
    "explain_reducer",
    "format_explain_markdown",
    "parse_cuboid",
    "LINEAGE_RECORD_TYPES",
    "LINEAGE_VERSION",
    "NULL_LINEAGE",
    "LineageRecorder",
    "NullLineage",
    "cuboid_of_mask_key",
    "lineage_of",
    "load_lineage",
    "ALERT_KINDS",
    "NULL_WATCHDOG",
    "SKEW_TOLERANCE",
    "STRAGGLER_FACTOR",
    "NullWatchdog",
    "Watchdog",
    "WatchdogExpectation",
    "watchdog_of",
]
