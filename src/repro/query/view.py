"""OLAP query operations over a materialized cube.

The cube exists to be queried: once an engine has produced a
:class:`~repro.cubing.result.CubeResult`, a :class:`CubeView` answers the
classic OLAP operations over it **without touching the base relation** —
every roll-up, slice, dice and drill-down is a lookup into the right
cuboid:

* :meth:`rollup` — aggregate over a chosen subset of dimensions;
* :meth:`slice` — fix some dimensions to values, aggregate the rest away;
* :meth:`dice` — like slice but with per-dimension predicates;
* :meth:`drilldown` — refine a group by one more dimension;
* :meth:`top` — the k largest groups of a cuboid;
* :meth:`pivot` — a two-dimensional cross-tab.

All name-based: callers use schema dimension names, never masks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cubing.result import CubeResult
from ..relation.lattice import mask_dimensions
from ..relation.schema import SchemaError


class QueryError(ValueError):
    """Raised for queries the materialized cube cannot answer."""


class CubeView:
    """Name-based OLAP operations over a :class:`CubeResult`."""

    def __init__(self, cube: CubeResult):
        self.cube = cube
        self.schema = cube.schema

    # -- helpers -------------------------------------------------------------

    def _dimension_index(self, name: str) -> int:
        """Schema lookup with unknown names surfaced as QueryErrors —
        every operation funnels through here so callers never see a
        raw :class:`SchemaError` (or worse, a ``KeyError``)."""
        try:
            return self.schema.dimension_index(name)
        except SchemaError as exc:
            raise QueryError(str(exc)) from None

    def _mask_for(self, dimensions: Sequence[str]) -> int:
        mask = 0
        for name in dimensions:
            index = self._dimension_index(name)
            bit = 1 << index
            if mask & bit:
                raise QueryError(f"dimension {name!r} listed twice")
            mask |= bit
        return mask

    def _named_groups(self, mask: int) -> Dict[Tuple, object]:
        groups = self.cube.cuboid(mask)
        if not groups and mask != 0:
            # Distinguish "empty cuboid" from "never materialized": a full
            # cube always has the apex, so an entirely absent cuboid on a
            # non-empty cube means partial materialization.
            if self.cube.num_groups and not self.cube.cuboid(0):
                raise QueryError("cube has no apex; is it materialized?")
        return groups

    # -- operations ------------------------------------------------------------

    def rollup(self, *dimensions: str) -> Dict[Tuple, object]:
        """The cuboid grouped by exactly ``dimensions``.

        ``rollup()`` with no arguments returns the grand total (apex).

        >>> view.rollup("name", "year")      # doctest: +SKIP
        {("laptop", 2012): 2, ...}
        """
        mask = self._mask_for(dimensions)
        ordered = mask_dimensions(mask, self.schema.num_dimensions)
        requested = [self.schema.dimension_index(d) for d in dimensions]
        groups = self._named_groups(mask)
        if list(ordered) == requested:
            return dict(groups)
        # Caller listed dimensions out of schema order: permute values.
        positions = [ordered.index(i) for i in requested]
        return {
            tuple(values[p] for p in positions): agg
            for values, agg in groups.items()
        }

    def total(self):
        """The grand total — the apex cuboid's single value."""
        try:
            return self.cube.value(0, ())
        except KeyError:
            raise QueryError("cube has no apex group") from None

    def slice(self, **fixed) -> Dict[Tuple, object]:
        """Fix dimensions to values; remaining dimensions stay grouped.

        Returns ``{remaining-dimension values: aggregate}`` over the finest
        cuboid that keeps every dimension (fixed ones are filtered, free
        ones grouped).

        >>> view.slice(city="Rome")          # doctest: +SKIP
        {("laptop", 2012): 2, ...}
        """
        full = (1 << self.schema.num_dimensions) - 1
        fixed_indexes = {
            self._dimension_index(name): value
            for name, value in fixed.items()
        }
        groups = self._named_groups(full)
        result: Dict[Tuple, object] = {}
        free = [
            i
            for i in range(self.schema.num_dimensions)
            if i not in fixed_indexes
        ]
        for values, agg in groups.items():
            if all(values[i] == v for i, v in fixed_indexes.items()):
                result[tuple(values[i] for i in free)] = agg
        return result

    def dice(
        self, **predicates: Callable[[object], bool]
    ) -> Dict[Tuple, object]:
        """Filter the finest cuboid by per-dimension predicates.

        >>> view.dice(year=lambda y: y >= 2012)    # doctest: +SKIP
        """
        full = (1 << self.schema.num_dimensions) - 1
        index_predicates = {
            self._dimension_index(name): predicate
            for name, predicate in predicates.items()
        }
        return {
            values: agg
            for values, agg in self._named_groups(full).items()
            if all(
                predicate(values[i])
                for i, predicate in index_predicates.items()
            )
        }

    def drilldown(
        self,
        group: Dict[str, object],
        into: str,
    ) -> Dict[object, object]:
        """Refine one c-group by one more dimension.

        ``group`` fixes the current dimensions (name -> value); ``into``
        names the dimension to expand.  Returns ``{new value: aggregate}``.

        >>> view.drilldown({"name": "laptop"}, into="city")  # doctest: +SKIP
        {"Rome": 2, "Paris": 1}
        """
        if into in group:
            raise QueryError(f"cannot drill into fixed dimension {into!r}")
        dims = list(group) + [into]
        mask = self._mask_for(dims)
        ordered = mask_dimensions(mask, self.schema.num_dimensions)
        into_index = self._dimension_index(into)
        fixed = {
            self._dimension_index(name): value
            for name, value in group.items()
        }
        result: Dict[object, object] = {}
        for values, agg in self._named_groups(mask).items():
            by_index = dict(zip(ordered, values))
            if all(by_index[i] == v for i, v in fixed.items()):
                result[by_index[into_index]] = agg
        return result

    def top(
        self,
        dimensions: Sequence[str],
        k: int = 10,
        key: Optional[Callable[[object], object]] = None,
    ) -> List[Tuple[Tuple, object]]:
        """The ``k`` groups of a cuboid with the largest aggregates.

        ``key`` extracts a sortable magnitude from the aggregate value
        (identity by default — fine for count/sum).  Ties break on the
        group values, ascending, so the ranking does not depend on the
        iteration order of the backing cuboid.
        """
        if k <= 0:
            raise QueryError("k must be positive")
        key = key or (lambda value: value)
        groups = self.rollup(*dimensions)
        if k > len(groups):
            raise QueryError(
                f"top({k}) asked of a cuboid with only "
                f"{len(groups)} group(s)"
            )
        try:
            ranked = sorted(groups.items())
        except TypeError:  # unorderable mixed-type group values
            ranked = sorted(groups.items(), key=lambda item: repr(item[0]))
        ranked.sort(key=lambda item: key(item[1]), reverse=True)
        return ranked[:k]

    def pivot(
        self, row_dim: str, column_dim: str
    ) -> Dict[object, Dict[object, object]]:
        """A cross-tab: ``{row value: {column value: aggregate}}``.

        >>> view.pivot("name", "year")       # doctest: +SKIP
        {"laptop": {2012: 2, 2015: 1}, ...}
        """
        table: Dict[object, Dict[object, object]] = {}
        for (row, column), agg in self.rollup(row_dim, column_dim).items():
            table.setdefault(row, {})[column] = agg
        return table

    def cuboid_sizes(self) -> Dict[Tuple[str, ...], int]:
        """Group counts per cuboid, keyed by dimension-name tuples."""
        sizes: Dict[Tuple[str, ...], int] = {}
        for mask, count in self.cube.groups_per_cuboid().items():
            names = tuple(
                self.schema.dimensions[i]
                for i in mask_dimensions(mask, self.schema.num_dimensions)
            )
            sizes[names] = count
        return sizes
