"""OLAP query layer over materialized cubes."""

from .view import CubeView, QueryError

__all__ = ["CubeView", "QueryError"]
