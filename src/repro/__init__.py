"""SP-Cube: skew-resilient MapReduce data-cube computation.

Reproduction of Milo & Altshuler, *"An Efficient MapReduce Cube Algorithm
for Varied Data Distributions"*, SIGMOD 2016.

Quick start::

    from repro import SPCube, ClusterConfig, gen_zipf

    relation = gen_zipf(100_000)
    run = SPCube(ClusterConfig(num_machines=20)).compute(relation)
    print(run.cube.num_groups, run.metrics.total_seconds)

Package layout
--------------
``repro.relation``    schemas, relations, cube/tuple lattices
``repro.aggregates``  distributive/algebraic/holistic aggregate functions
``repro.mapreduce``   the simulated cluster substrate
``repro.cubing``      sequential algorithms (oracle, BUC, top-down)
``repro.core``        the SP-Sketch, the planner, and SP-Cube itself
``repro.baselines``   Naive-MR, Pig's MR-Cube, Hive, PipeSort-MR
``repro.datagen``     the paper's workload generators
``repro.theory``      skewness monotonicity and traffic-bound predicates
``repro.analysis``    sweep harness and paper-style reporting
``repro.serving``     on-disk cube store, stored views, query server
"""

from .aggregates import (
    Average,
    Multi,
    Count,
    CountDistinct,
    Max,
    Median,
    Min,
    Sum,
    TopKFrequent,
    Variance,
    get_aggregate,
)
from .analysis import format_figure, format_panel, run_sweep
from .baselines import HiveCube, MRCube, NaiveCube, PipeSortMR
from .core import SPCube, SPSketch, build_exact_sketch
from .cubing import CubeResult, buc_cube, sequential_cube, topdown_cube
from .datagen import (
    adversarial_relation,
    gen_binomial,
    gen_zipf,
    usagov_clicks,
    wikipedia_traffic,
)
from .interface import CubeAlgorithm, CubeRun
from .query import CubeView, QueryError
from .mapreduce import ClusterConfig, CostModel
from .relation import Relation, Schema
from .serving import CubeServer, CubeStore, StoredCubeView, StoreError

__version__ = "1.0.0"

__all__ = [
    "Average",
    "Count",
    "CountDistinct",
    "Max",
    "Median",
    "Min",
    "Multi",
    "Sum",
    "TopKFrequent",
    "Variance",
    "get_aggregate",
    "format_figure",
    "format_panel",
    "run_sweep",
    "HiveCube",
    "MRCube",
    "NaiveCube",
    "PipeSortMR",
    "SPCube",
    "SPSketch",
    "build_exact_sketch",
    "CubeResult",
    "buc_cube",
    "sequential_cube",
    "topdown_cube",
    "adversarial_relation",
    "gen_binomial",
    "gen_zipf",
    "usagov_clicks",
    "wikipedia_traffic",
    "CubeAlgorithm",
    "CubeRun",
    "CubeView",
    "QueryError",
    "CubeServer",
    "CubeStore",
    "StoredCubeView",
    "StoreError",
    "ClusterConfig",
    "CostModel",
    "Relation",
    "Schema",
    "__version__",
]
