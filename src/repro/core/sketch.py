"""The Skews-and-Partitions Sketch (paper Section 4).

For every cuboid of the cube lattice the SP-Sketch records two items:

* ``skews(C)`` — the skewed c-groups of ``C`` (Definition 2.7:
  ``|set(g)| > m``), stored as a hash table keyed by the group's dimension
  values (Section 5: *"maintaining a hash table in which items correspond
  to the skewed c-groups"*);
* ``partition_elements(C)`` — the ``k - 1`` lexicographic boundaries that
  split the cuboid's tuples into ``k`` balanced ranges (Definition 4.1).

Two builders are provided, mirroring the paper's exposition:

* :func:`build_exact_sketch` — the *utopian* sketch, computed from fully
  sorted data.  Too expensive in production (it sorts ``R`` per cuboid) but
  exact; used as ground truth in tests and available for ablations.
* :func:`build_sketch_from_sample` — the approximated sketch of
  Algorithm 2: skews are the c-groups whose **sample** count exceeds
  ``beta = ln(nk)`` (an iceberg cube over the sample, computed with BUC),
  and partition elements are sample quantiles.

The sketch is independent of the aggregate function: once built it can
serve any number of cube computations (Section 4 preamble).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..cubing.buc import iceberg_groups
from ..mapreduce.sizes import estimate_bytes
from ..relation.lattice import GroupValues, all_cuboids, project, projector
from ..relation.relation import Relation
from .partition import (
    find_partition,
    partition_elements_for_cuboid,
)


class SketchError(RuntimeError):
    """Raised when a sketch violates a structural invariant."""


@dataclass
class CuboidSketch:
    """Per-cuboid record: skewed groups (with counts) and partition bounds."""

    skewed: Dict[GroupValues, int] = field(default_factory=dict)
    partition_elements: List[GroupValues] = field(default_factory=list)


class SPSketch:
    """The assembled sketch: one :class:`CuboidSketch` per lattice node."""

    def __init__(
        self,
        num_dimensions: int,
        num_partitions: int,
        cuboids: Dict[int, CuboidSketch],
    ):
        self.num_dimensions = num_dimensions
        self.num_partitions = num_partitions
        self.cuboids = cuboids
        for mask in all_cuboids(num_dimensions):
            self.cuboids.setdefault(mask, CuboidSketch())
        self._probes = None  # lazily-built skew_bits probe list
        self._size_bytes = None  # lazily-computed serialized size

    # -- queries used by Algorithm 3 -----------------------------------------

    def is_skewed(self, mask: int, values: GroupValues) -> bool:
        """Hash-table membership test of Section 5."""
        return values in self.cuboids[mask].skewed

    def partition_of(self, mask: int, values: GroupValues) -> int:
        """Partition (reducer range) of a non-skewed c-group."""
        return find_partition(self.cuboids[mask].partition_elements, values)

    def skew_bits(self, row: Sequence) -> int:
        """Bitmap over all ``2^d`` cuboids: bit ``mask`` set iff the row's
        projection onto ``mask`` is a skewed c-group.

        This is the planner's cache key — two rows with equal skew bitmaps
        have structurally identical marking plans.  The probe list (cuboids
        that have any skewed group at all, with compiled projectors) is
        built on first use; the sketch is immutable once built.
        """
        probes = self._probes
        if probes is None:
            d = self.num_dimensions
            probes = self._probes = [
                (1 << mask, projector(mask, d), cuboid.skewed)
                for mask, cuboid in self.cuboids.items()
                if cuboid.skewed
            ]
        bits = 0
        for bit, get, skewed in probes:
            if get(row) in skewed:
                bits |= bit
        return bits

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self):
        """Drop the probe list: it holds compiled projector closures that
        cannot cross a process boundary, and it rebuilds on first use."""
        state = self.__dict__.copy()
        state["_probes"] = None
        return state

    # -- inspection ------------------------------------------------------------

    def skewed_groups(self) -> Iterator[Tuple[int, GroupValues, int]]:
        """All recorded skewed groups as ``(mask, values, count)``."""
        for mask in sorted(self.cuboids):
            for values, count in sorted(
                self.cuboids[mask].skewed.items(), key=lambda item: item[0]
            ):
                yield mask, values, count

    @property
    def num_skewed(self) -> int:
        return sum(len(c.skewed) for c in self.cuboids.values())

    def to_payload(self) -> Tuple:
        """A flat serializable view — what would cross the DFS to machines."""
        return tuple(
            (
                mask,
                tuple(sorted(cuboid.skewed.items())),
                tuple(cuboid.partition_elements),
            )
            for mask, cuboid in sorted(self.cuboids.items())
        )

    def serialized_bytes(self) -> int:
        """Estimated serialized size (Figures 5c / 6c measure this).

        Cached on first use — the sketch is immutable once built, and the
        size is consulted repeatedly (metrics extras, trace events, the
        sketch-size bench).
        """
        size = self._size_bytes
        if size is None:
            size = self._size_bytes = estimate_bytes(self.to_payload())
        return size

    def to_dict(self) -> Dict:
        """Summary statistics as plain JSON — the sketch's self-report.

        One shared accessor for everything that describes a sketch: the
        ``doctor`` diagnostics, the ``sketch`` CLI command, SP-Cube's
        metrics extras, and the sketch-size bench all read these numbers
        from here instead of recomputing them ad hoc.  Cuboid keys are
        masks (ints); callers serializing to JSON get string keys for
        free via ``json.dumps``.
        """
        skewed_per_cuboid = {
            mask: len(cuboid.skewed)
            for mask, cuboid in sorted(self.cuboids.items())
            if cuboid.skewed
        }
        elements_per_cuboid = {
            mask: len(cuboid.partition_elements)
            for mask, cuboid in sorted(self.cuboids.items())
        }
        return {
            "num_dimensions": self.num_dimensions,
            "num_partitions": self.num_partitions,
            "num_cuboids": len(self.cuboids),
            "num_skewed": self.num_skewed,
            "skewed_per_cuboid": skewed_per_cuboid,
            "num_partition_elements": sum(elements_per_cuboid.values()),
            "partition_elements_per_cuboid": elements_per_cuboid,
            "serialized_bytes": self.serialized_bytes(),
        }

    def validate_monotonic(self) -> None:
        """Check downward monotonicity of recorded skews.

        If a group ``g`` is skewed, every sub-group (projection onto fewer
        attributes) has a superset tuple set and must be skewed too.  Both
        builders guarantee this by construction (a sample count can only
        grow when attributes are dropped); a violation means corruption.
        """
        d = self.num_dimensions
        for mask, cuboid in self.cuboids.items():
            for values in cuboid.skewed:
                for dim_pos, dim in enumerate(_mask_dims(mask, d)):
                    child_mask = mask & ~(1 << dim)
                    child_values = values[:dim_pos] + values[dim_pos + 1 :]
                    if not self.is_skewed(child_mask, child_values):
                        raise SketchError(
                            f"skew monotonicity violated: {mask:b}/{values} "
                            f"skewed but {child_mask:b}/{child_values} is not"
                        )

    def __repr__(self) -> str:
        return (
            f"SPSketch(d={self.num_dimensions}, k={self.num_partitions}, "
            f"{self.num_skewed} skewed groups, "
            f"~{self.serialized_bytes()} bytes)"
        )


def build_exact_sketch(
    relation: Relation,
    num_partitions: int,
    memory_records: int,
) -> SPSketch:
    """The utopian SP-Sketch: exact skews and exact partition elements.

    Sorts the relation once per cuboid — ``O(2^d n log n)`` work, which is
    why the paper replaces it with the sampled variant; exact output makes
    it the test oracle for :func:`build_sketch_from_sample`.
    """
    d = relation.schema.num_dimensions
    cuboids: Dict[int, CuboidSketch] = {}
    for mask in all_cuboids(d):
        skewed = {
            values: count
            for values, count in relation.group_sizes(mask).items()
            if count > memory_records
        }
        elements = partition_elements_for_cuboid(
            relation.rows, mask, d, num_partitions
        )
        cuboids[mask] = CuboidSketch(skewed, elements)
    return SPSketch(d, num_partitions, cuboids)


def build_sketch_from_sample(
    sample_rows: Sequence[Tuple],
    num_dimensions: int,
    num_partitions: int,
    beta: float,
) -> SPSketch:
    """Algorithm 2's ``build-sketch``: the sketch from a Bernoulli sample.

    Skew detection is an iceberg cube over the sample with threshold
    ``count > beta`` (the paper runs BUC with ``count`` aggregation and
    keeps groups above ``beta``); partition elements are the sample's
    ``k - 1`` per-cuboid quantile projections.
    """
    rows = list(sample_rows)
    min_support = max(1, math.floor(beta) + 1)
    heavy = iceberg_groups(rows, num_dimensions, min_support)

    cuboids: Dict[int, CuboidSketch] = {
        mask: CuboidSketch() for mask in all_cuboids(num_dimensions)
    }
    for (mask, values), count in heavy.items():
        if count > beta:
            cuboids[mask].skewed[values] = count
    for mask in all_cuboids(num_dimensions):
        cuboids[mask].partition_elements = partition_elements_for_cuboid(
            rows, mask, num_dimensions, num_partitions
        )
    return SPSketch(num_dimensions, num_partitions, cuboids)


def _mask_dims(mask: int, d: int) -> List[int]:
    return [i for i in range(d) if mask >> i & 1]
