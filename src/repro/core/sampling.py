"""Sampling parameters of Algorithm 2 (paper Section 4.2).

Each tuple enters the sample independently with probability

    alpha = ln(n * k) / m

and a c-group is declared *skewed* when its **sample** frequency exceeds

    beta = ln(n * k).

The paper derives these choices from the accuracy/size tradeoff proved in
Propositions 4.4-4.7: the sample has size ``O(m)`` w.h.p., every truly
skewed group (``|set(g)| > m``) is caught w.h.p., and the sketch fits in
one machine's memory.  Note ``alpha * m = beta``: a group at the skew
threshold has expected sample count exactly ``beta``.
"""

from __future__ import annotations

import math


def sampling_probability(num_records: int, num_machines: int, memory_records: int) -> float:
    """``alpha = ln(n k) / m``, clamped to [0, 1].

    Tiny inputs can push the formula above 1 (the sample would be the whole
    relation); clamping keeps the algorithm well-defined there — the paper
    notes such inputs are not practical MapReduce candidates anyway.
    """
    if num_records <= 0:
        return 0.0
    if num_machines <= 0 or memory_records <= 0:
        raise ValueError("num_machines and memory_records must be positive")
    alpha = math.log(num_records * num_machines) / memory_records
    return min(1.0, max(0.0, alpha))


def skew_sample_threshold(num_records: int, num_machines: int) -> float:
    """``beta = ln(n k)`` — sample-count threshold for declaring skew."""
    if num_records <= 0:
        return 0.0
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    return math.log(num_records * num_machines)


def expected_sample_size(num_records: int, num_machines: int, memory_records: int) -> float:
    """``n * alpha`` — the expected sample size, ``O(m)`` by Prop 4.4."""
    return num_records * sampling_probability(
        num_records, num_machines, memory_records
    )
