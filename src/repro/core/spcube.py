"""SP-Cube — the paper's algorithm (Section 5), in two MapReduce rounds.

**Round 1** (Algorithm 2): every mapper Bernoulli-samples its input chunk
with probability ``alpha = ln(nk)/m``; the single reducer builds the
SP-Sketch from the sample and publishes it on the DFS, from where every
machine of round 2 caches it in memory.

**Round 2** (Algorithm 3): mappers traverse each tuple's lattice bottom-up
(BFS); skewed c-groups are partially aggregated in mapper memory and
flushed to reducer 0 at close; for each first-unmarked non-skewed c-group
the full tuple is emitted to the reducer owning that group's lexicographic
range partition, and the group's ancestors are marked (the reducer derives
them locally).  Reducer 0 merges the skew partial aggregates; reducers
``1..k`` aggregate each received base group and all the lattice nodes it
covers.

Ablation switches (all default to the paper's configuration):

* ``map_partial_aggregation=False`` — skewed groups are no longer
  pre-aggregated; they flow through the normal emission path (design
  choice 4 in DESIGN.md).
* ``ancestor_covering=False`` — every non-skewed node is emitted
  individually instead of being derived from a covering descendant
  (design choice 3).
* ``range_partitioning=False`` — base groups are hash-routed instead of
  range-routed (design choice 5).
* ``use_exact_sketch=True`` — round 1 is replaced by the utopian sketch
  (exact skews/partitions); useful for tests and for isolating sampling
  error.

Extension beyond the paper: ``min_group_size`` computes an *iceberg* cube
— only c-groups with at least that many contributing tuples are output.
Mappers carry exact counts next to the partial states, so filtering is
exact on both the skewed path (reducer 0) and the covered path, matching
``buc_cube(min_support=...)`` bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..aggregates.classify import check_spcube_support
from ..aggregates.functions import AggregateFunction, Count
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.broadcast import Broadcast, unwrap
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.dfs import DistributedFileSystem, ReplicaExhausted
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
    paused_gc,
    stable_hash,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.telemetry import emit_run_telemetry
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import project, projector
from ..relation.relation import Relation
from .planner import TuplePlan, plan_for_skew_bits, plan_without_covering
from .sampling import sampling_probability, skew_sample_threshold
from .sketch import SPSketch, build_exact_sketch, build_sketch_from_sample

#: Key tags distinguishing the two reduce-side streams of Algorithm 3.
_SKEW_TAG = "S"
_GROUP_TAG = "G"


def _spcube_cuboid_of(key):
    """Cuboid (lattice mask) of a round-2 ``(tag, mask, values)`` key.

    Both streams carry the mask second; module-level so the lineage
    layer's flow classification survives the pickle to worker processes.
    """
    return key[1]

#: DFS path under which round 1 publishes the sketch.
SKETCH_PATH = "spcube/sketch"


class SPCube:
    """The SP-Cube engine.  See module docstring for the knobs."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
        *,
        allow_holistic: bool = False,
        use_exact_sketch: bool = False,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        map_partial_aggregation: bool = True,
        ancestor_covering: bool = True,
        range_partitioning: bool = True,
        min_group_size: int = 1,
        dfs: Optional[DistributedFileSystem] = None,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()
        check_spcube_support(self.aggregate, allow_holistic)
        self.use_exact_sketch = use_exact_sketch
        self.alpha = alpha
        self.beta = beta
        self.map_partial_aggregation = map_partial_aggregation
        self.ancestor_covering = ancestor_covering
        self.range_partitioning = range_partitioning
        if min_group_size < 1:
            raise ValueError("min_group_size must be >= 1")
        self.min_group_size = min_group_size
        # Explicit None check: an empty DFS is falsy (it has __len__).
        # A DFS created here shares the cluster's fault plan, so injected
        # replica failures hit the sketch broadcast between rounds.
        self.dfs = (
            dfs
            if dfs is not None
            else DistributedFileSystem(
                fault_plan=self.cluster.fault_plan,
                topology=self.cluster.topology(),
            )
        )

    @property
    def name(self) -> str:
        return "SP-Cube"

    # -- public API -------------------------------------------------------------

    def compute(self, relation: Relation) -> CubeRun:
        """Compute the full cube of ``relation`` (both rounds).

        Runs with cyclic GC paused end to end (see
        :func:`~repro.mapreduce.engine.paused_gc`): the rounds *and* the
        driver-side assembly (cube building, DFS output) allocate
        cycle-free data by the million, and re-enabling the collector
        between phases just buys repeated full scans of the live cube.
        """
        with paused_gc():
            return self._compute(relation)

    def _compute(self, relation: Relation) -> CubeRun:
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        metrics = RunMetrics(algorithm=self.name)
        tracer = self.cluster.tracer or NULL_TRACER
        run_base = tracer.clock
        # Rounds run through the checkpoint/recovery layer: a node loss
        # resumes from the last completed round instead of killing the
        # run.  The runner owns metrics.jobs appends and shares this
        # engine's DFS so checkpoints feel injected replica faults.
        runner = RoundRunner(
            self.cluster, metrics, dfs=self.dfs, run_id="spcube"
        )

        sketch = self._round_one(relation, n, k, m, metrics, runner)
        if metrics.jobs and metrics.jobs[-1].aborted:
            # Round 1 exhausted a task's retry budget: the driver aborts
            # the run before the cube round, as a real JobTracker would.
            emit_run_span(tracer, metrics, run_base)
            emit_run_telemetry(self.cluster, metrics, dfs=self.dfs)
            return CubeRun(
                cube=CubeResult(relation.schema), metrics=metrics,
                sketch=sketch,
            )
        self.dfs.write(SKETCH_PATH, [sketch.to_payload()])
        summary = sketch.to_dict()
        metrics.extras["sketch_bytes"] = summary["serialized_bytes"]
        metrics.extras["num_skewed_groups"] = summary["num_skewed"]
        if tracer.enabled:
            tracer.event(
                "sketch", at=tracer.clock, job="sp-sketch",
                fields={
                    "bytes": summary["serialized_bytes"],
                    "skewed_groups": summary["num_skewed"],
                    "partition_elements": summary["num_partition_elements"],
                    "sample_size": metrics.extras.get("sample_size", 0),
                },
            )

        cube = self._round_two(relation, sketch, k, m, metrics, runner)
        metrics.output_groups = cube.num_groups
        emit_run_span(tracer, metrics, run_base)
        emit_run_telemetry(self.cluster, metrics, dfs=self.dfs)
        return CubeRun(cube=cube, metrics=metrics, sketch=sketch)

    # -- round 1: sketch ---------------------------------------------------------

    def _round_one(
        self,
        relation: Relation,
        n: int,
        k: int,
        m: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> SPSketch:
        d = relation.schema.num_dimensions
        if self.use_exact_sketch:
            metrics.extras["sketch_mode"] = "exact"
            return build_exact_sketch(relation, k, m)

        alpha = (
            self.alpha
            if self.alpha is not None
            else sampling_probability(n, k, m)
        )
        beta = (
            self.beta
            if self.beta is not None
            else skew_sample_threshold(n, k)
        )
        seed = self.cluster.seed

        job = MapReduceJob(
            name="sp-sketch",
            mapper_factory=TaskFactory(_SampleMapper, alpha, seed),
            reducer_factory=TaskFactory(_SketchReducer, d, k, beta),
            num_reducers=1,
            # The sample is O(m) w.h.p. (Prop 4.4) and is collected under a
            # single key by design; the value-buffer flag does not apply.
            value_buffer_fraction=None,
            # The sketch comes back through the round's output pairs — no
            # driver-side holder list — so this round runs on whatever
            # executor the cluster configures, parallel included.
        )
        result = runner.run(job, relation.split(k), m)

        if result.output:
            sketch = result.output[0][1]
        else:
            # Empty sample (tiny input) or aborted round: a blank sketch
            # is still valid — nothing is skewed, everything routes to
            # partition 0.
            sketch = build_sketch_from_sample([], d, k, beta)
        metrics.extras["alpha"] = alpha
        metrics.extras["beta"] = beta
        metrics.extras["sample_size"] = metrics.jobs[-1].map_output_records
        return sketch

    # -- round 2: cube ------------------------------------------------------------

    def _round_two(
        self,
        relation: Relation,
        sketch: SPSketch,
        k: int,
        m: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> CubeResult:
        d = relation.schema.num_dimensions
        aggregate = self.aggregate

        # Every round-2 machine caches the sketch from the DFS; the read
        # transparently fails over across replicas, and a sketch with no
        # live replica kills the run before the cube round starts.
        try:
            self.dfs.read(SKETCH_PATH)
        except ReplicaExhausted as error:
            metrics.fatal_error = f"sketch broadcast failed: {error}"
            return CubeResult(relation.schema)
        finally:
            metrics.extras["dfs_read_retries"] = self.dfs.read_retries

        # Round-2 tasks all close over the sketch (plan function,
        # partitioner, mapper factory); the broadcast handle ships it
        # across the process-pool boundary once per worker instead of
        # once per task reference.
        sketch_ref = Broadcast(sketch)
        plan = self._plan_factory(sketch_ref)
        partitioner = _CubePartitioner(sketch_ref, k, self.range_partitioning)

        min_size = self.min_group_size
        job = MapReduceJob(
            name="sp-cube",
            mapper_factory=TaskFactory(
                _CubeMapper, d, aggregate, sketch_ref, plan
            ),
            reducer_factory=TaskFactory(
                _CubeReducer, d, aggregate, plan, min_size
            ),
            num_reducers=k + 1,
            partitioner=partitioner,
            cuboid_of=_spcube_cuboid_of,
        )
        watchdog = self.cluster.watchdog
        if (
            watchdog is not None
            and watchdog.enabled
            and self.range_partitioning
        ):
            # Register the sketch's promise so the watchdog can hold
            # round 2 to it.  Hash-routed ablations skip this: the
            # prediction replays range routing, which no longer matches.
            from ..observability.diagnostics import predicted_reducer_loads

            attribution = predicted_reducer_loads(
                relation, sketch, num_mappers=k
            )
            watchdog.expect(
                "sp-cube", n=len(relation), k=k, m=m,
                predicted=attribution.predicted,
            )
        result = runner.run(job, relation.split(k), m)
        if result.metrics.aborted:
            return CubeResult(relation.schema)

        cube = CubeResult(relation.schema)
        cube.add_pairs(result.output)
        self._write_output(cube)
        return cube

    def _plan_factory(self, sketch: SPSketch) -> "_PlanFunction":
        """Per-tuple plan function honouring the ablation switches."""
        return _PlanFunction(
            sketch, self.ancestor_covering, self.map_partial_aggregation
        )

    def _write_output(self, cube: CubeResult) -> None:
        """Persist one DFS file per cuboid, as Section 3.1 describes."""
        # try/except beats setdefault here: no default-list allocation per
        # group, and the KeyError path fires once per cuboid (<= 2^d).
        per_cuboid: Dict[int, List] = {}
        for (mask, values), value in cube.items():
            try:
                per_cuboid[mask].append((values, value))
            except KeyError:
                per_cuboid[mask] = [(values, value)]
        for mask, rows in per_cuboid.items():
            self.dfs.write(f"spcube/cube/cuboid-{mask}", sorted(rows))


class _PlanFunction:
    """Picklable per-tuple plan lookup honouring the ablation switches.

    Replaces the old driver-side closure so round-2 tasks can execute in
    worker processes; the lattice-plan caches rebuild lazily per process.
    Accepts the sketch directly or as a
    :class:`~repro.mapreduce.broadcast.Broadcast` handle — the handle is
    what pickles, so the sketch crosses the pool boundary once per
    worker process.

    Plans are memoized per distinct *dimension tuple*: ``skew_bits`` is a
    pure, equality-respecting function of the dimension values (its probes
    are dict-membership tests of projections), so equal tuples always get
    the same plan object — the memo can change neither plans nor anything
    downstream.  The memo is process-local transient state (never pickled,
    rebuilt empty after a pool hop) shared by every round-2 task in the
    process: the map phase pays the sketch probes once per distinct tuple
    and the reduce phase re-reads the answers for free.  It must never
    feed *per-task* observables (counters, metrics) — its hit pattern
    depends on which tasks shared a process, which the simulation does
    not model.
    """

    __slots__ = (
        "_sketch_ref", "_sketch", "_d", "_covering", "_partial", "_memo",
    )

    _MEMO_LIMIT = 1 << 17

    def __init__(
        self, sketch, ancestor_covering: bool,
        map_partial_aggregation: bool,
    ):
        self._sketch_ref = sketch
        self._sketch = unwrap(sketch)
        self._d = self._sketch.num_dimensions
        self._covering = ancestor_covering
        self._partial = map_partial_aggregation
        self._memo: Dict[Tuple, TuplePlan] = {}

    def __call__(self, row) -> TuplePlan:
        dims = row[: self._d]
        memo = self._memo
        plan = memo.get(dims)
        if plan is None:
            bits = self._sketch.skew_bits(row) if self._partial else 0
            if self._covering:
                plan = plan_for_skew_bits(bits, self._d)
            else:
                plan = plan_without_covering(bits, self._d)
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            memo[dims] = plan
        return plan

    def __getstate__(self):
        return (self._sketch_ref, self._covering, self._partial)

    def __setstate__(self, state):
        self._sketch_ref, self._covering, self._partial = state
        self._sketch = unwrap(self._sketch_ref)
        self._d = self._sketch.num_dimensions
        self._memo = {}


class _CubePartitioner:
    """Algorithm 3's routing: skew stream to reducer 0, base groups to
    their sketch range partition (or a stable hash under the ablation).

    Range lookups are memoized per emission key: ``partition_of`` is a
    pure *comparison-based* function of the key, so equal keys — the
    only thing a dict can conflate — always land on the same partition,
    and the memo cannot change routing.  The ``stable_hash`` ablation
    path is deliberately **not** memoized: it hashes ``repr(key)``, and
    equal keys with different reprs (``(1,)`` vs ``(True,)``) would be
    conflated by an equality-keyed cache, diverging from the uncached
    routing.  The memo is transient per process (never pickled).
    """

    __slots__ = ("_sketch_ref", "_sketch", "_k", "_range_partitioning", "_memo")

    _MEMO_LIMIT = 1 << 16

    def __init__(self, sketch, k: int, range_partitioning: bool):
        self._sketch_ref = sketch
        self._sketch = unwrap(sketch)
        self._k = k
        self._range_partitioning = range_partitioning
        self._memo: Dict[Tuple, int] = {}

    def __call__(self, key, num_reducers: int) -> int:
        if key[0] == _SKEW_TAG:
            return 0
        if self._range_partitioning:
            memo = self._memo
            target = memo.get(key)
            if target is None:
                _tag, mask, values = key
                if len(memo) >= self._MEMO_LIMIT:
                    memo.clear()
                target = 1 + self._sketch.partition_of(mask, values)
                memo[key] = target
            return target
        _tag, mask, values = key
        return 1 + stable_hash((mask, values)) % self._k

    def __getstate__(self):
        return (self._sketch_ref, self._k, self._range_partitioning)

    def __setstate__(self, state):
        self._sketch_ref, self._k, self._range_partitioning = state
        self._sketch = unwrap(self._sketch_ref)
        self._memo = {}


class _SampleMapper(Mapper):
    """Round 1 map (Algorithm 2 lines 2-5): Bernoulli sampling."""

    def __init__(self, alpha: float, seed: int):
        self._alpha = alpha
        self._seed = seed

    def setup(self, context) -> None:
        super().setup(context)
        # Per-machine deterministic stream, independent across machines.
        self._rng = random.Random(self._seed * 1_000_003 + context.machine)

    def map(self, record):
        if self._rng.random() <= self._alpha:
            yield 0, record


class _SketchReducer(Reducer):
    """Round 1 reduce (Algorithm 2 lines 7-10): build the sketch in memory.

    The sketch is returned through the round's output pairs — the normal
    MapReduce data path — rather than a driver-side holder list, so the
    round is free to run on the parallel executor (a mutable holder
    cannot cross a process boundary; it silently stays empty in a worker
    fork, which is why the holder design pinned round 1 to the serial
    backend).
    """

    def __init__(self, d: int, k: int, beta: float):
        self._d = d
        self._k = k
        self._beta = beta

    def reduce(self, key, values):
        sample = values
        # Charge the in-memory BUC over the sample: one lattice walk per row.
        self.context.add_cpu(len(sample) * (1 << self._d))
        sketch = build_sketch_from_sample(sample, self._d, self._k, self._beta)
        yield key, sketch


class _CubeMapper(Mapper):
    """Round 2 map (Algorithm 3 lines 2-20), with a memoized lattice walk.

    The whole map-side outcome for one record — which skewed c-group
    partials to bump and which emission keys to send — is a pure
    function of the record's *dimension tuple*: the plan depends only on
    the tuple's skew bitmap (itself a function of the dimensions), and
    every projection ignores the measure.  Records with equal dimension
    tuples therefore share one cached **emission plan**, so repeated
    values (the common case in skewed data) skip the BFS walk, the skew
    probes and all projections entirely.

    Equality-keyed caching cannot change the output: the historical
    per-record path already conflated equal keys — the partials dict and
    the emission-key intern memo are equality-keyed — so a memo hit
    replays exactly the pair stream the miss path produced for the first
    equal record (same interned key objects, same order).  Cache
    effectiveness is reported through the deterministic task counters
    ``lattice_plan_hits``/``lattice_plan_misses`` (visible in attempt
    spans and ``analyze-trace``).
    """

    #: Emission keys repeat for every row of a c-group; interning them in
    #: a bounded per-task memo reuses one tuple per group (identity-equal
    #: keys make the engine's routing-cache probes pointer comparisons).
    _EMIT_MEMO_LIMIT = 1 << 16
    #: Bound on the per-task dimension-tuple -> emission-plan memo.
    _PLAN_MEMO_LIMIT = 1 << 16

    def __init__(self, d: int, aggregate: AggregateFunction, sketch, plan):
        self._d = d
        self._aggregate = aggregate
        self._sketch = sketch
        self._plan = plan
        # For Count (the paper's default) the partial state always equals
        # the exact count, so the partials dict stores a bare int; other
        # aggregates carry a mutable [count, state] accumulator.
        self._count_only = type(aggregate) is Count
        self._partials: Dict[Tuple[int, Tuple], object] = {}
        self._emit_keys: Dict[Tuple[int, Tuple], Tuple] = {}
        self._row_plans: Dict[Tuple, Tuple] = {}
        self._projectors: Dict[int, object] = {}

    def _project(self, record, mask: int) -> Tuple:
        """Project via a per-mask compiled getter (cached per task)."""
        getter = self._projectors.get(mask)
        if getter is None:
            getter = self._projectors[mask] = projector(mask, self._d)
        return getter(record)

    def _plan_entry(self, record) -> Tuple[List, Tuple]:
        """Build (and memoize) the emission plan for a dimension tuple."""
        plan = self._plan(record)
        project_mask = self._project
        skew_keys = [
            (mask, project_mask(record, mask)) for mask in plan.skewed_masks
        ]
        emit_keys = self._emit_keys
        emitted = []
        for base_mask, _covered in plan.emissions:
            group = (base_mask, project_mask(record, base_mask))
            emit_key = emit_keys.get(group)
            if emit_key is None:
                if len(emit_keys) >= self._EMIT_MEMO_LIMIT:
                    emit_keys.clear()
                emit_key = (_GROUP_TAG,) + group
                emit_keys[group] = emit_key
            emitted.append(emit_key)
        entry = (skew_keys, tuple(emitted))
        plans = self._row_plans
        if len(plans) >= self._PLAN_MEMO_LIMIT:
            plans.clear()
        plans[record[: self._d]] = entry
        return entry

    def _absorb_skewed(self, skew_keys, measure) -> None:
        """Fold one record into the partial aggregates of its skewed groups."""
        partials = self._partials
        if self._count_only:
            partials_get = partials.get
            for key in skew_keys:
                partials[key] = partials_get(key, 0) + 1
            return
        aggregate = self._aggregate
        agg_add = aggregate.add
        partials_get = partials.get
        for key in skew_keys:
            acc = partials_get(key)
            if acc is None:
                partials[key] = [1, agg_add(aggregate.create(), measure)]
            else:
                acc[0] += 1
                acc[1] = agg_add(acc[1], measure)

    def map(self, record):
        # One lattice-node visit per cuboid, as in the BFS traversal.
        self.context.add_cpu(1 << self._d)
        entry = self._row_plans.get(record[: self._d])
        if entry is None:
            entry = self._plan_entry(record)
        skew_keys, emitted = entry
        self._absorb_skewed(skew_keys, record[-1])
        for emit_key in emitted:
            yield emit_key, record

    def map_chunk(self, chunk):
        """Whole-chunk walk: one memo probe per record on the hit path."""
        d = self._d
        self.context.add_cpu(len(chunk) << d)
        plans_get = self._row_plans.get
        plan_entry = self._plan_entry
        absorb = self._absorb_skewed
        buffered: List = []
        append = buffered.append
        misses = 0
        for record in chunk:
            entry = plans_get(record[:d])
            if entry is None:
                misses += 1
                entry = plan_entry(record)
            skew_keys, emitted = entry
            if skew_keys:
                absorb(skew_keys, record[-1])
            for emit_key in emitted:
                append((emit_key, record))
        context = self.context
        context.incr("lattice_plan_hits", len(chunk) - misses)
        context.incr("lattice_plan_misses", misses)
        return len(chunk), buffered

    def close(self):
        """Flush partial aggregates of skewed groups (lines 16-20)."""
        if self._count_only:
            for (mask, values), count in sorted(
                self._partials.items(),
                key=lambda item: (item[0][0], item[0][1]),
            ):
                yield (_SKEW_TAG, mask, values), (count, count)
            return
        for (mask, values), acc in sorted(
            self._partials.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            yield (_SKEW_TAG, mask, values), (acc[0], acc[1])


class _CubeReducer(Reducer):
    """Round 2 reduce (Algorithm 3 lines 23-31), with a memoized cover walk.

    The covered group keys of one row under one base mask are a pure
    function of the row's dimension tuple (plan and projections ignore
    the measure), so rows repeating a dimension tuple inside one base
    group — duplicated input tuples, which is what makes a c-group heavy
    — share one walk through a per-group memo instead of re-projecting.
    The dominant case on high-cardinality data is the opposite extreme, a
    *singleton* base group, which takes a straight-line path: no memo, no
    accumulator dict, each covered node emitted directly with its trivial
    aggregate.  Both paths preserve the exact ``create/add`` fold (with a
    counting fast path for ``Count``), the accumulator insertion order and
    the equality conflation of the historical per-row loop, so emitted
    pairs are bit-identical.  Walk dedup rates surface as the
    deterministic task counters ``covered_walk_hits`` /
    ``covered_walk_misses`` (flushed once per task in :meth:`close`; the
    counts depend only on the task's own input, never on process layout).
    """

    def __init__(
        self,
        d: int,
        aggregate: AggregateFunction,
        plan,
        min_group_size: int = 1,
    ):
        self._d = d
        self._aggregate = aggregate
        self._plan = plan
        self._min_group_size = min_group_size
        self._count_only = type(aggregate) is Count
        # Per-mask compiled projectors (operator.itemgetter): fetched once
        # per mask per task instead of through the lru_cache wrapper per
        # row; identical projection tuples, minus the wrapper call.
        self._projectors: Dict[int, object] = {}
        self._walk_hits = 0
        self._walk_misses = 0

    def reduce(self, key, values):
        if key[0] == _SKEW_TAG:
            return self._reduce_skewed(key, values)
        return self._reduce_base_group(key, values)

    def close(self):
        self.context.incr("covered_walk_hits", self._walk_hits)
        self.context.incr("covered_walk_misses", self._walk_misses)
        return ()

    def _covered_keys(self, row, base_mask: int):
        """``(mask, projection)`` node keys this row covers for ``base_mask``."""
        d = self._d
        projectors = self._projectors
        keys = []
        for mask in self._plan(row).covered_by[base_mask]:
            getter = projectors.get(mask)
            if getter is None:
                getter = projectors[mask] = projector(mask, d)
            keys.append((mask, getter(row)))
        return keys

    def _reduce_skewed(self, key, entries):
        """Merge per-mapper partial aggregates of one skewed c-group.

        Each entry is a ``(count, state)`` pair; the exact count supports
        iceberg filtering and protects against a borderline sample having
        flagged a group that is actually below the iceberg threshold.
        """
        _tag, mask, values = key
        aggregate = self._aggregate
        total = 0
        merged = aggregate.create()
        for count, state in entries:
            total += count
            merged = aggregate.merge(merged, state)
        if total >= self._min_group_size:
            yield (mask, values), aggregate.finalize(merged)

    def _reduce_base_group(self, key, rows):
        """Aggregate a non-skewed base group and every node it covers.

        Equivalent to the paper's "compute BUC over ancestors": the covered
        masks are exactly the ancestors assigned to this base by the shared
        marking plan, and each is aggregated over ``set(g)`` locally.
        Returns a list (not a generator): the engine only iterates the
        result, and skipping ~one generator frame switch per emitted
        c-group matters at millions of groups.
        """
        _tag, base_mask, _values = key
        aggregate = self._aggregate
        min_size = self._min_group_size
        count_only = self._count_only

        if len(rows) == 1:
            # Singleton base group — the common case on high-cardinality
            # data.  Every covered node is visited exactly once, so the
            # accumulator dict would hold only trivial entries; emit
            # directly in covered order (== the dict's insertion order),
            # fused into one pass over the covered masks.
            self._walk_misses += 1
            row = rows[0]
            covered = self._plan(row).covered_by[base_mask]
            self.context.add_cpu(len(covered))
            if min_size > 1:
                return []
            if count_only:
                value = 1
            else:
                value = aggregate.finalize(
                    aggregate.add(aggregate.create(), row[-1])
                )
            d = self._d
            projectors = self._projectors
            projectors_get = projectors.get
            out = []
            append = out.append
            for mask in covered:
                getter = projectors_get(mask)
                if getter is None:
                    getter = projectors[mask] = projector(mask, d)
                append(((mask, getter(row)), value))
            return out

        # Heavy base group: rows sharing a dimension tuple (duplicated
        # input tuples) share one covered walk through a per-group memo.
        agg_add = aggregate.add
        seen: Dict[Tuple, Tuple] = {}
        seen_get = seen.get
        covered_keys = self._covered_keys
        d = self._d
        accumulators: Dict[Tuple[int, Tuple], object] = {}
        acc_get = accumulators.get
        cpu = 0

        for row in rows:
            dims = row[:d]
            entry = seen_get(dims)
            if entry is None:
                group_keys = covered_keys(row, base_mask)
                entry = seen[dims] = (group_keys, len(group_keys))
            group_keys, num_covered = entry
            cpu += num_covered
            if count_only:
                for group_key in group_keys:
                    acc = acc_get(group_key)
                    accumulators[group_key] = 1 if acc is None else acc + 1
            else:
                measure = row[-1]
                for group_key in group_keys:
                    acc = acc_get(group_key)
                    if acc is None:
                        accumulators[group_key] = [
                            1, agg_add(aggregate.create(), measure),
                        ]
                    else:
                        acc[0] += 1
                        acc[1] = agg_add(acc[1], measure)

        self.context.add_cpu(cpu)
        self._walk_hits += len(rows) - len(seen)
        self._walk_misses += len(seen)

        if count_only:
            return [
                (group_key, count)
                for group_key, count in accumulators.items()
                if count >= min_size
            ]
        finalize = aggregate.finalize
        return [
            (group_key, finalize(acc[1]))
            for group_key, acc in accumulators.items()
            if acc[0] >= min_size
        ]
