"""SP-Cube — the paper's algorithm (Section 5), in two MapReduce rounds.

**Round 1** (Algorithm 2): every mapper Bernoulli-samples its input chunk
with probability ``alpha = ln(nk)/m``; the single reducer builds the
SP-Sketch from the sample and publishes it on the DFS, from where every
machine of round 2 caches it in memory.

**Round 2** (Algorithm 3): mappers traverse each tuple's lattice bottom-up
(BFS); skewed c-groups are partially aggregated in mapper memory and
flushed to reducer 0 at close; for each first-unmarked non-skewed c-group
the full tuple is emitted to the reducer owning that group's lexicographic
range partition, and the group's ancestors are marked (the reducer derives
them locally).  Reducer 0 merges the skew partial aggregates; reducers
``1..k`` aggregate each received base group and all the lattice nodes it
covers.

Ablation switches (all default to the paper's configuration):

* ``map_partial_aggregation=False`` — skewed groups are no longer
  pre-aggregated; they flow through the normal emission path (design
  choice 4 in DESIGN.md).
* ``ancestor_covering=False`` — every non-skewed node is emitted
  individually instead of being derived from a covering descendant
  (design choice 3).
* ``range_partitioning=False`` — base groups are hash-routed instead of
  range-routed (design choice 5).
* ``use_exact_sketch=True`` — round 1 is replaced by the utopian sketch
  (exact skews/partitions); useful for tests and for isolating sampling
  error.

Extension beyond the paper: ``min_group_size`` computes an *iceberg* cube
— only c-groups with at least that many contributing tuples are output.
Mappers carry exact counts next to the partial states, so filtering is
exact on both the skewed path (reducer 0) and the covered path, matching
``buc_cube(min_support=...)`` bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..aggregates.classify import check_spcube_support
from ..aggregates.functions import AggregateFunction, Count
from ..cubing.result import CubeResult
from ..interface import CubeRun
from ..mapreduce.checkpoint import RoundRunner
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.dfs import DistributedFileSystem, ReplicaExhausted
from ..mapreduce.engine import (
    Mapper,
    MapReduceJob,
    Reducer,
    TaskFactory,
    stable_hash,
)
from ..mapreduce.metrics import RunMetrics
from ..observability.tracer import NULL_TRACER, emit_run_span
from ..relation.lattice import project
from ..relation.relation import Relation
from .planner import TuplePlan, plan_for_skew_bits, plan_without_covering
from .sampling import sampling_probability, skew_sample_threshold
from .sketch import SPSketch, build_exact_sketch, build_sketch_from_sample

#: Key tags distinguishing the two reduce-side streams of Algorithm 3.
_SKEW_TAG = "S"
_GROUP_TAG = "G"

#: DFS path under which round 1 publishes the sketch.
SKETCH_PATH = "spcube/sketch"


class SPCube:
    """The SP-Cube engine.  See module docstring for the knobs."""

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        aggregate: Optional[AggregateFunction] = None,
        *,
        allow_holistic: bool = False,
        use_exact_sketch: bool = False,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        map_partial_aggregation: bool = True,
        ancestor_covering: bool = True,
        range_partitioning: bool = True,
        min_group_size: int = 1,
        dfs: Optional[DistributedFileSystem] = None,
    ):
        self.cluster = cluster or ClusterConfig()
        self.aggregate = aggregate or Count()
        check_spcube_support(self.aggregate, allow_holistic)
        self.use_exact_sketch = use_exact_sketch
        self.alpha = alpha
        self.beta = beta
        self.map_partial_aggregation = map_partial_aggregation
        self.ancestor_covering = ancestor_covering
        self.range_partitioning = range_partitioning
        if min_group_size < 1:
            raise ValueError("min_group_size must be >= 1")
        self.min_group_size = min_group_size
        # Explicit None check: an empty DFS is falsy (it has __len__).
        # A DFS created here shares the cluster's fault plan, so injected
        # replica failures hit the sketch broadcast between rounds.
        self.dfs = (
            dfs
            if dfs is not None
            else DistributedFileSystem(
                fault_plan=self.cluster.fault_plan,
                topology=self.cluster.topology(),
            )
        )

    @property
    def name(self) -> str:
        return "SP-Cube"

    # -- public API -------------------------------------------------------------

    def compute(self, relation: Relation) -> CubeRun:
        """Compute the full cube of ``relation`` (both rounds)."""
        n = len(relation)
        k = self.cluster.num_machines
        m = self.cluster.derive_memory(n)
        metrics = RunMetrics(algorithm=self.name)
        tracer = self.cluster.tracer or NULL_TRACER
        run_base = tracer.clock
        # Rounds run through the checkpoint/recovery layer: a node loss
        # resumes from the last completed round instead of killing the
        # run.  The runner owns metrics.jobs appends and shares this
        # engine's DFS so checkpoints feel injected replica faults.
        runner = RoundRunner(
            self.cluster, metrics, dfs=self.dfs, run_id="spcube"
        )

        sketch = self._round_one(relation, n, k, m, metrics, runner)
        if metrics.jobs and metrics.jobs[-1].aborted:
            # Round 1 exhausted a task's retry budget: the driver aborts
            # the run before the cube round, as a real JobTracker would.
            emit_run_span(tracer, metrics, run_base)
            return CubeRun(
                cube=CubeResult(relation.schema), metrics=metrics,
                sketch=sketch,
            )
        self.dfs.write(SKETCH_PATH, [sketch.to_payload()])
        summary = sketch.to_dict()
        metrics.extras["sketch_bytes"] = summary["serialized_bytes"]
        metrics.extras["num_skewed_groups"] = summary["num_skewed"]
        if tracer.enabled:
            tracer.event(
                "sketch", at=tracer.clock, job="sp-sketch",
                fields={
                    "bytes": summary["serialized_bytes"],
                    "skewed_groups": summary["num_skewed"],
                    "partition_elements": summary["num_partition_elements"],
                    "sample_size": metrics.extras.get("sample_size", 0),
                },
            )

        cube = self._round_two(relation, sketch, k, m, metrics, runner)
        metrics.output_groups = cube.num_groups
        emit_run_span(tracer, metrics, run_base)
        return CubeRun(cube=cube, metrics=metrics, sketch=sketch)

    # -- round 1: sketch ---------------------------------------------------------

    def _round_one(
        self,
        relation: Relation,
        n: int,
        k: int,
        m: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> SPSketch:
        d = relation.schema.num_dimensions
        if self.use_exact_sketch:
            metrics.extras["sketch_mode"] = "exact"
            return build_exact_sketch(relation, k, m)

        alpha = (
            self.alpha
            if self.alpha is not None
            else sampling_probability(n, k, m)
        )
        beta = (
            self.beta
            if self.beta is not None
            else skew_sample_threshold(n, k)
        )
        seed = self.cluster.seed
        holder: List[SPSketch] = []

        job = MapReduceJob(
            name="sp-sketch",
            mapper_factory=TaskFactory(_SampleMapper, alpha, seed),
            reducer_factory=TaskFactory(_SketchReducer, d, k, beta, holder),
            num_reducers=1,
            # The sample is O(m) w.h.p. (Prop 4.4) and is collected under a
            # single key by design; the value-buffer flag does not apply.
            value_buffer_fraction=None,
            # The reducer hands the sketch back through ``holder``; that
            # side channel pins the round to the driver process.
            driver_state=True,
        )
        runner.run(job, relation.split(k), m)

        if holder:
            sketch = holder[0]
        else:
            # Empty sample (tiny input): a blank sketch is still valid —
            # nothing is skewed, everything routes to partition 0.
            sketch = build_sketch_from_sample([], d, k, beta)
        metrics.extras["alpha"] = alpha
        metrics.extras["beta"] = beta
        metrics.extras["sample_size"] = metrics.jobs[-1].map_output_records
        return sketch

    # -- round 2: cube ------------------------------------------------------------

    def _round_two(
        self,
        relation: Relation,
        sketch: SPSketch,
        k: int,
        m: int,
        metrics: RunMetrics,
        runner: RoundRunner,
    ) -> CubeResult:
        d = relation.schema.num_dimensions
        aggregate = self.aggregate

        # Every round-2 machine caches the sketch from the DFS; the read
        # transparently fails over across replicas, and a sketch with no
        # live replica kills the run before the cube round starts.
        try:
            self.dfs.read(SKETCH_PATH)
        except ReplicaExhausted as error:
            metrics.fatal_error = f"sketch broadcast failed: {error}"
            return CubeResult(relation.schema)
        finally:
            metrics.extras["dfs_read_retries"] = self.dfs.read_retries

        plan = self._plan_factory(sketch)
        partitioner = _CubePartitioner(sketch, k, self.range_partitioning)

        min_size = self.min_group_size
        job = MapReduceJob(
            name="sp-cube",
            mapper_factory=TaskFactory(_CubeMapper, d, aggregate, sketch, plan),
            reducer_factory=TaskFactory(
                _CubeReducer, d, aggregate, plan, min_size
            ),
            num_reducers=k + 1,
            partitioner=partitioner,
        )
        result = runner.run(job, relation.split(k), m)
        if result.metrics.aborted:
            return CubeResult(relation.schema)

        cube = CubeResult(relation.schema)
        for (mask, values), value in result.output:
            cube.add(mask, values, value)
        self._write_output(cube)
        return cube

    def _plan_factory(self, sketch: SPSketch) -> "_PlanFunction":
        """Per-tuple plan function honouring the ablation switches."""
        return _PlanFunction(
            sketch, self.ancestor_covering, self.map_partial_aggregation
        )

    def _write_output(self, cube: CubeResult) -> None:
        """Persist one DFS file per cuboid, as Section 3.1 describes."""
        per_cuboid: Dict[int, List] = {}
        for (mask, values), value in cube.items():
            per_cuboid.setdefault(mask, []).append((values, value))
        for mask, rows in per_cuboid.items():
            self.dfs.write(f"spcube/cube/cuboid-{mask}", sorted(rows))


class _PlanFunction:
    """Picklable per-tuple plan lookup honouring the ablation switches.

    Replaces the old driver-side closure so round-2 tasks can execute in
    worker processes; the lattice-plan caches rebuild lazily per process.
    """

    __slots__ = ("_sketch", "_d", "_covering", "_partial")

    def __init__(
        self, sketch: SPSketch, ancestor_covering: bool,
        map_partial_aggregation: bool,
    ):
        self._sketch = sketch
        self._d = sketch.num_dimensions
        self._covering = ancestor_covering
        self._partial = map_partial_aggregation

    def __call__(self, row) -> TuplePlan:
        bits = self._sketch.skew_bits(row) if self._partial else 0
        if self._covering:
            return plan_for_skew_bits(bits, self._d)
        return plan_without_covering(bits, self._d)

    def __getstate__(self):
        return (self._sketch, self._covering, self._partial)

    def __setstate__(self, state):
        self._sketch, self._covering, self._partial = state
        self._d = self._sketch.num_dimensions


class _CubePartitioner:
    """Algorithm 3's routing: skew stream to reducer 0, base groups to
    their sketch range partition (or a stable hash under the ablation)."""

    __slots__ = ("_sketch", "_k", "_range_partitioning")

    def __init__(self, sketch: SPSketch, k: int, range_partitioning: bool):
        self._sketch = sketch
        self._k = k
        self._range_partitioning = range_partitioning

    def __call__(self, key, num_reducers: int) -> int:
        if key[0] == _SKEW_TAG:
            return 0
        _tag, mask, values = key
        if self._range_partitioning:
            return 1 + self._sketch.partition_of(mask, values)
        return 1 + stable_hash((mask, values)) % self._k

    def __getstate__(self):
        return (self._sketch, self._k, self._range_partitioning)

    def __setstate__(self, state):
        self._sketch, self._k, self._range_partitioning = state


class _SampleMapper(Mapper):
    """Round 1 map (Algorithm 2 lines 2-5): Bernoulli sampling."""

    def __init__(self, alpha: float, seed: int):
        self._alpha = alpha
        self._seed = seed

    def setup(self, context) -> None:
        super().setup(context)
        # Per-machine deterministic stream, independent across machines.
        self._rng = random.Random(self._seed * 1_000_003 + context.machine)

    def map(self, record):
        if self._rng.random() <= self._alpha:
            yield 0, record


class _SketchReducer(Reducer):
    """Round 1 reduce (Algorithm 2 lines 7-10): build the sketch in memory."""

    def __init__(self, d: int, k: int, beta: float, holder: List[SPSketch]):
        self._d = d
        self._k = k
        self._beta = beta
        self._holder = holder

    def reduce(self, key, values):
        sample = values
        # Charge the in-memory BUC over the sample: one lattice walk per row.
        self.context.add_cpu(len(sample) * (1 << self._d))
        sketch = build_sketch_from_sample(sample, self._d, self._k, self._beta)
        self._holder.append(sketch)
        return ()


class _CubeMapper(Mapper):
    """Round 2 map (Algorithm 3 lines 2-20)."""

    #: Emission keys repeat for every row of a c-group; interning them in
    #: a bounded per-task memo reuses one tuple per group (identity-equal
    #: keys make the engine's routing-cache probes pointer comparisons).
    _EMIT_MEMO_LIMIT = 1 << 16

    def __init__(self, d: int, aggregate: AggregateFunction, sketch: SPSketch, plan):
        self._d = d
        self._aggregate = aggregate
        self._sketch = sketch
        self._plan = plan
        self._partials: Dict[Tuple[int, Tuple], object] = {}
        self._emit_keys: Dict[Tuple[int, Tuple], Tuple] = {}

    def map(self, record):
        d = self._d
        aggregate = self._aggregate
        # One lattice-node visit per cuboid, as in the BFS traversal.
        self.context.add_cpu(1 << d)

        plan = self._plan(record)
        measure = record[-1]
        for mask in plan.skewed_masks:
            key = (mask, project(record, mask, d))
            entry = self._partials.get(key)
            if entry is None:
                entry = (0, aggregate.create())
            count, state = entry
            self._partials[key] = (count + 1, aggregate.add(state, measure))
        emit_keys = self._emit_keys
        for base_mask, _covered in plan.emissions:
            group = (base_mask, project(record, base_mask, d))
            emit_key = emit_keys.get(group)
            if emit_key is None:
                if len(emit_keys) >= self._EMIT_MEMO_LIMIT:
                    emit_keys.clear()
                emit_key = (_GROUP_TAG,) + group
                emit_keys[group] = emit_key
            yield emit_key, record

    def close(self):
        """Flush partial aggregates of skewed groups (lines 16-20)."""
        for (mask, values), state in sorted(
            self._partials.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            yield (_SKEW_TAG, mask, values), state


class _CubeReducer(Reducer):
    """Round 2 reduce (Algorithm 3 lines 23-31)."""

    def __init__(
        self,
        d: int,
        aggregate: AggregateFunction,
        plan,
        min_group_size: int = 1,
    ):
        self._d = d
        self._aggregate = aggregate
        self._plan = plan
        self._min_group_size = min_group_size

    def reduce(self, key, values):
        if key[0] == _SKEW_TAG:
            return self._reduce_skewed(key, values)
        return self._reduce_base_group(key, values)

    def _reduce_skewed(self, key, entries):
        """Merge per-mapper partial aggregates of one skewed c-group.

        Each entry is a ``(count, state)`` pair; the exact count supports
        iceberg filtering and protects against a borderline sample having
        flagged a group that is actually below the iceberg threshold.
        """
        _tag, mask, values = key
        aggregate = self._aggregate
        total = 0
        merged = aggregate.create()
        for count, state in entries:
            total += count
            merged = aggregate.merge(merged, state)
        if total >= self._min_group_size:
            yield (mask, values), aggregate.finalize(merged)

    def _reduce_base_group(self, key, rows):
        """Aggregate a non-skewed base group and every node it covers.

        Equivalent to the paper's "compute BUC over ancestors": the covered
        masks are exactly the ancestors assigned to this base by the shared
        marking plan, and each is aggregated over ``set(g)`` locally.
        """
        _tag, base_mask, _values = key
        d = self._d
        aggregate = self._aggregate
        accumulators: Dict[Tuple[int, Tuple], object] = {}

        for row in rows:
            covered = self._plan(row).covered_by[base_mask]
            self.context.add_cpu(len(covered))
            measure = row[-1]
            for mask in covered:
                group_key = (mask, project(row, mask, d))
                entry = accumulators.get(group_key)
                if entry is None:
                    entry = (0, aggregate.create())
                count, state = entry
                accumulators[group_key] = (
                    count + 1,
                    aggregate.add(state, measure),
                )

        min_size = self._min_group_size
        for (mask, values), (count, state) in accumulators.items():
            if count >= min_size:
                yield (mask, values), aggregate.finalize(state)
