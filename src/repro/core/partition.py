"""Lexicographic range partitioning of cuboids (paper Section 4.1).

For a cuboid ``C``, rows are ordered by their projection onto ``C``'s
dimensions (the paper's ``<_C``); the *partition elements* are the
projections at positions ``i * n / k`` of the sorted order.  The induced
split has the two properties of Proposition 4.2 that SP-Cube's load
balancing rests on:

1. all tuples of a non-skewed c-group land in the same partition, and
2. excluding skewed groups, every partition has ``O(m)`` tuples.

Routing a group to its partition is a binary search over the elements:
partition 0 holds groups ``<=`` the first element, partition ``i`` holds
groups in ``(element_i, element_{i+1}]``, and the last partition holds the
rest — exactly the paper's bucket definition.
"""

from __future__ import annotations

import bisect
from typing import AbstractSet, List, Sequence, Tuple

from ..relation.lattice import GroupValues, project


def partition_elements_from_sorted(
    sorted_groups: Sequence[GroupValues], num_partitions: int
) -> List[GroupValues]:
    """The ``k - 1`` partition elements of an already-sorted group list.

    Implements Definition 4.1 on an arbitrary sorted sequence (the utopian
    sketch passes the full relation's projections, Algorithm 2's reducer
    passes the sample's).
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    count = len(sorted_groups)
    if count == 0 or num_partitions == 1:
        return []
    elements = []
    for i in range(1, num_partitions):
        position = min(i * count // num_partitions, count - 1)
        elements.append(sorted_groups[position])
    return elements


def partition_elements_for_cuboid(
    rows: Sequence[Tuple],
    mask: int,
    num_dimensions: int,
    num_partitions: int,
) -> List[GroupValues]:
    """Sort ``rows`` by ``<_C`` for cuboid ``mask`` and extract the elements."""
    projections = sorted(
        project(row, mask, num_dimensions) for row in rows
    )
    return partition_elements_from_sorted(projections, num_partitions)


def find_partition(
    elements: Sequence[GroupValues], group: GroupValues
) -> int:
    """Partition index of ``group`` given the cuboid's partition elements.

    ``bisect_left`` realizes the paper's bucket boundaries: groups equal to
    an element go to the partition *ending* at that element, so an entire
    (non-skewed) c-group — whose members compare equal — stays together.

    >>> find_partition([("b",), ("d",)], ("a",))
    0
    >>> find_partition([("b",), ("d",)], ("b",))
    0
    >>> find_partition([("b",), ("d",)], ("c",))
    1
    >>> find_partition([("b",), ("d",)], ("z",))
    2
    """
    return bisect.bisect_left(list(elements), group)


def partition_sizes(
    rows: Sequence[Tuple],
    mask: int,
    num_dimensions: int,
    elements: Sequence[GroupValues],
    num_partitions: int,
) -> List[int]:
    """Tuples per partition for cuboid ``mask`` — used to verify Prop 4.2."""
    return partition_loads(rows, mask, num_dimensions, elements, num_partitions)


def partition_loads(
    rows: Sequence[Tuple],
    mask: int,
    num_dimensions: int,
    elements: Sequence[GroupValues],
    num_partitions: int,
    exclude_groups: AbstractSet[GroupValues] = frozenset(),
) -> List[int]:
    """Tuples per partition, optionally excluding some c-groups.

    Proposition 4.2(2) bounds every partition's load *excluding skewed
    groups* — those route through the map-side partial-aggregation path,
    not the range partition.  The sketch audit passes the skewed group
    set here to measure the balance the proposition actually promises.
    """
    sizes = [0] * num_partitions
    element_list = list(elements)
    for row in rows:
        group = project(row, mask, num_dimensions)
        if group in exclude_groups:
            continue
        sizes[bisect.bisect_left(element_list, group)] += 1
    return sizes
