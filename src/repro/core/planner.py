"""The tuple-lattice marking plan shared by SP-Cube's mapper and reducers.

Algorithm 3's mapper walks ``lattice(t)`` bottom-up in BFS order:

* a **skewed** node is partially aggregated map-side and marked;
* the first **non-skewed** unmarked node ``g`` is *emitted* — the tuple is
  sent to ``g``'s range partition — and ``g`` plus all its (transitively)
  unmarked ancestors are marked, because the receiving reducer can derive
  every ancestor locally from ``set(g)`` (Observations 2.5/2.6).

The reducer must later reconstruct *which* ancestors each emitted base
group covers.  Crucially, the whole marking outcome is a function of only
the tuple's **skew bitmap** (which of its ``2^d`` projections the sketch
flags as skewed): the BFS order is fixed, and marking decisions consult
nothing else.  Mapper and reducer therefore share this planner, and plans
are memoized by bitmap — for real data distributions only a handful of
distinct bitmaps occur, so planning cost is amortized to a dictionary hit
per tuple.

Consistency argument (why reducer-side recomputation is sound): whether an
ancestor node ``a`` of ``lattice(t)`` is covered by base ``g`` depends only
on the skew statuses of nodes whose mask is a subset of ``a``'s mask, and
those are projections of ``t`` onto subsets of ``a``'s attributes — on
which *all* tuples of ``set(a)`` agree.  Hence every tuple contributing to
``a`` routes ``a``'s computation to the same base group and, via
Proposition 4.2(1), to the same reducer.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Sequence, Tuple

from ..relation.lattice import bfs_order, strict_supersets
from .sketch import SPSketch


class PlannerError(RuntimeError):
    """Raised when the sketch's skew marks are inconsistent with the lattice."""


class TuplePlan:
    """The marking outcome for one skew bitmap.

    Attributes
    ----------
    skewed_masks:
        Cuboid masks partially aggregated map-side for this tuple.
    emissions:
        ``(base_mask, covered_masks)`` pairs: the tuple is emitted once per
        base mask; the receiving reducer computes the c-groups of every
        covered mask (the base and its newly-marked ancestors).
    covered_by:
        ``{base_mask: covered_masks}`` — the reducer-side lookup.
    """

    __slots__ = ("skewed_masks", "emissions", "covered_by")

    def __init__(
        self,
        skewed_masks: Tuple[int, ...],
        emissions: Tuple[Tuple[int, Tuple[int, ...]], ...],
    ):
        self.skewed_masks = skewed_masks
        self.emissions = emissions
        self.covered_by: Dict[int, Tuple[int, ...]] = dict(emissions)

    @property
    def num_emitted(self) -> int:
        return len(self.emissions)

    def all_covered_masks(self) -> Tuple[int, ...]:
        """Every mask handled via emission (used by coverage tests)."""
        return tuple(
            mask for _base, covered in self.emissions for mask in covered
        )


@lru_cache(maxsize=65536)
def plan_for_skew_bits(skew_bits: int, num_dimensions: int) -> TuplePlan:
    """Run Algorithm 3's marking loop for one skew bitmap.

    ``skew_bits`` has bit ``mask`` set iff the tuple's projection onto
    cuboid ``mask`` is skewed according to the sketch.
    """
    marked = 0  # bitmap over masks
    skewed_masks = []
    emissions = []

    for mask in bfs_order(num_dimensions):
        if marked >> mask & 1:
            continue
        if skew_bits >> mask & 1:
            skewed_masks.append(mask)
            marked |= 1 << mask
            continue
        covered = [mask]
        marked |= 1 << mask
        for superset in strict_supersets(mask, num_dimensions):
            if marked >> superset & 1:
                continue
            if skew_bits >> superset & 1:
                # set(superset) is a subset of set(mask); a skewed ancestor
                # of a non-skewed node is impossible for any sample.
                raise PlannerError(
                    f"skew bitmap {skew_bits:b} marks superset {superset:b} "
                    f"of non-skewed {mask:b} as skewed"
                )
            covered.append(superset)
            marked |= 1 << superset
        emissions.append((mask, tuple(covered)))

    return TuplePlan(tuple(skewed_masks), tuple(emissions))


@lru_cache(maxsize=65536)
def plan_without_covering(skew_bits: int, num_dimensions: int) -> TuplePlan:
    """Ablation plan: skew handling kept, ancestor covering disabled.

    Every non-skewed node is emitted on its own (``covered = (node,)``),
    isolating the network saving of Observation 2.6 in the ablation bench.
    """
    skewed_masks = []
    emissions = []
    for mask in bfs_order(num_dimensions):
        if skew_bits >> mask & 1:
            skewed_masks.append(mask)
        else:
            emissions.append((mask, (mask,)))
    return TuplePlan(tuple(skewed_masks), tuple(emissions))


def plan_tuple(row: Sequence, sketch: SPSketch) -> TuplePlan:
    """The marking plan for one tuple under ``sketch``."""
    return plan_for_skew_bits(sketch.skew_bits(row), sketch.num_dimensions)
