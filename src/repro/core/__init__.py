"""SP-Cube core: the SP-Sketch, the shared planner, and the algorithm."""

from .partition import (
    find_partition,
    partition_elements_for_cuboid,
    partition_elements_from_sorted,
    partition_loads,
    partition_sizes,
)
from .planner import (
    PlannerError,
    TuplePlan,
    plan_for_skew_bits,
    plan_tuple,
    plan_without_covering,
)
from .sampling import (
    expected_sample_size,
    sampling_probability,
    skew_sample_threshold,
)
from .sketch import (
    CuboidSketch,
    SketchError,
    SPSketch,
    build_exact_sketch,
    build_sketch_from_sample,
)
from .spcube import SKETCH_PATH, SPCube

__all__ = [
    "find_partition",
    "partition_elements_for_cuboid",
    "partition_elements_from_sorted",
    "partition_loads",
    "partition_sizes",
    "PlannerError",
    "TuplePlan",
    "plan_for_skew_bits",
    "plan_tuple",
    "plan_without_covering",
    "expected_sample_size",
    "sampling_probability",
    "skew_sample_threshold",
    "CuboidSketch",
    "SketchError",
    "SPSketch",
    "build_exact_sketch",
    "build_sketch_from_sample",
    "SKETCH_PATH",
    "SPCube",
]
